//! The MCD out-of-order processor model and its simulation loop.
//!
//! The simulator is time driven at domain-cycle granularity: each of the
//! four on-chip domains has its own [`DomainClock`]; the main loop always
//! advances to the earliest pending clock edge and executes one cycle of
//! that domain.  Values crossing a domain boundary (dispatch into an issue
//! queue, cross-domain operand wakeup, completion reports to the ROB,
//! cache-miss traffic to memory) become visible in the destination domain
//! only at the capture time computed by the [`SyncWindow`] rule, which is
//! how the MCD synchronization penalties of the paper arise.
//!
//! The kernel is split across focused modules:
//!
//! * `frontend` — fetch, rename/dispatch, commit (the front-end domain);
//! * `exec` — the integer/floating-point domains' wakeup-select-issue
//!   cycle plus writeback;
//! * `lsq` — the load/store domain's cycle and the cache hierarchy timing;
//! * `events` — the per-domain calendar-queue timelines carrying tagged
//!   completion/wakeup events plus the ready lists they feed;
//! * `inflight` — the dense, ROB-indexed in-flight instruction slab.
//!
//! This file owns the processor structure, construction, the control
//! intervals and the main event loop.

use std::collections::VecDeque;
use std::time::Instant;

use mcd_clock::{
    DomainClock, DomainId, MegaHertz, OperatingPointTable, SyncWindow, TimePs, CONTROLLABLE_DOMAINS,
};
use mcd_control::{DomainSample, FrequencyController, IntervalSample, OfflineProfile};
use mcd_isa::{DynInst, InstructionStream, OpClass, SeqNum};
use mcd_microarch::{
    BranchPredictor, Cache, FuPool, FuPoolConfig, IssueQueue, LoadStoreQueue, Prediction,
    RenameAllocator, RenameMap, ReorderBuffer,
};
use mcd_power::EnergyAccount;

use serde::codec::{ByteReader, ByteWriter, CodecError, Result as CodecResult};

use crate::config::{ClockingMode, SimConfig};
use crate::events::{DomainTimeline, TimelineEvent};
use crate::inflight::{InFlightTable, Woken};
use crate::telemetry::{DomainTrace, HostStats, IntervalRecord, SimResult};

/// Abort the run if no instruction commits for this much simulated time
/// (catches simulator bugs rather than real behaviour: even a chain of
/// serialized main-memory misses commits every ~100 ns).
const COMMIT_WATCHDOG_PS: TimePs = 200_000_000;

/// Outcome of one [`McdProcessor::run_for`] slice.
///
/// A paused run is resumable from exactly where it stopped: every piece of
/// loop-carried simulation state (front end, in-flight slab, event queues,
/// LSQ, clock/ramp state, controller state, telemetry accumulators, the
/// livelock watchdog and the host wall-clock accumulator) lives in the
/// processor, so the sequence of slice boundaries is invisible to the
/// simulated machine and the final [`SimResult`] is bit-identical no matter
/// how the run was sliced.
// `Finished` carries the full telemetry; the size gap to the unit `Paused`
// variant is intentional — the value is matched once per slice, never
// stored in bulk.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum StepOutcome {
    /// The cycle budget of the slice was exhausted before the run finished;
    /// call [`McdProcessor::run_for`] again (with the same stream) to
    /// continue.
    Paused,
    /// The run completed and produced its telemetry.  The processor must
    /// not be stepped again.
    Finished(SimResult),
}

/// Loop-carried state of the main event loop that is not part of the
/// simulated machine itself: established on the first kernel step and kept
/// in the processor so a run can pause and resume at any cycle boundary.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RunState {
    /// Simulated time of the first pending edge when the run started
    /// (`None` until the first `run_for` call).
    pub(crate) start_ps: Option<TimePs>,
    /// Livelock watchdog: committed-instruction count and simulated time of
    /// the most recent forward progress.
    pub(crate) last_commit_check: (u64, TimePs),
    /// Host wall-clock seconds spent inside `run_for` so far, summed across
    /// all slices (which may execute on different worker threads).
    pub(crate) wall_seconds: f64,
    /// Set when the run finished; stepping a finished processor panics.
    pub(crate) done: bool,
}

/// Per-domain interval counters feeding the controller.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct DomainIntervalCounters {
    pub(crate) cycles: u64,
    pub(crate) busy_cycles: u64,
    pub(crate) issued: u64,
    pub(crate) cycles_at_interval_start: u64,
}

/// Per-domain cycle-weighted frequency accumulator (for reports).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FreqAccumulator {
    pub(crate) weighted_sum: f64,
    pub(crate) cycles: u64,
}

/// The simulated MCD processor.
pub struct McdProcessor {
    pub(crate) config: SimConfig,
    pub(crate) table: OperatingPointTable,
    pub(crate) controller: Box<dyn FrequencyController>,

    // Clocking.
    pub(crate) clocks: Vec<DomainClock>,
    pub(crate) sync: SyncWindow,

    // Front end.
    pub(crate) predictor: BranchPredictor,
    pub(crate) l1i: Cache,
    pub(crate) rename_alloc: RenameAllocator,
    pub(crate) rename_map: RenameMap,
    pub(crate) rob: ReorderBuffer,
    pub(crate) fetch_buffer: VecDeque<DynInst>,
    pub(crate) fetch_stalled_until: TimePs,
    pub(crate) fetch_blocked_by: Option<SeqNum>,
    pub(crate) stream_done: bool,

    // Execution domains.
    pub(crate) int_iq: IssueQueue,
    pub(crate) fp_iq: IssueQueue,
    pub(crate) lsq: LoadStoreQueue,
    pub(crate) int_fus: FuPool,
    pub(crate) fp_fus: FuPool,
    pub(crate) mem_fus: FuPool,
    pub(crate) l1d: Cache,
    pub(crate) l2: Cache,
    /// The unified per-domain event machinery: calendar-queue timelines
    /// carrying tagged completion/wakeup events, drained once per domain
    /// cycle, plus the seq-sorted ready lists the wakeups feed (event-driven
    /// wakeup: producers push, the select stage never re-probes).
    pub(crate) timeline: DomainTimeline,

    // In-flight instruction table (dense ROB-indexed slab).
    pub(crate) inflight: InFlightTable,
    /// Predictions made at fetch time, consumed in program order at
    /// dispatch.
    pub(crate) pending_predictions: VecDeque<(SeqNum, Prediction)>,
    /// Reusable per-cycle scratch buffer (issue candidates, LSQ scans);
    /// owned by the processor so the hot loops never allocate.
    pub(crate) scratch_seqs: Vec<SeqNum>,
    /// Reusable scratch buffer for the consumers woken by one writeback.
    pub(crate) scratch_woken: Vec<Woken>,
    /// Reusable scratch buffer for one timeline drain batch.
    pub(crate) scratch_events: Vec<TimelineEvent>,
    /// Reusable scratch buffer for the ready-list merge of one drain.
    pub(crate) scratch_ready: Vec<SeqNum>,

    // Energy.
    pub(crate) energy: EnergyAccount,

    // Statistics.
    pub(crate) committed: u64,
    /// Instructions dispatched through a precomputed trace-annotation
    /// sidecar (host telemetry only — not serialized: the counters
    /// describe *how* this process dispatched, not simulated state, and a
    /// restored run may legitimately continue on a different stream kind).
    pub(crate) ann_fed: u64,
    /// Instructions dispatched via live rename-map re-derivation (host
    /// telemetry only — not serialized, see `ann_fed`).
    pub(crate) ann_recomputed: u64,
    pub(crate) mispredict_redirects: u64,
    pub(crate) memory_accesses: u64,
    pub(crate) interval_index: u64,
    pub(crate) frontend_cycles_at_interval_start: u64,
    pub(crate) domain_counters: [DomainIntervalCounters; 5],
    pub(crate) freq_acc: [FreqAccumulator; 5],
    pub(crate) first_commit_ps: Option<TimePs>,
    pub(crate) last_commit_ps: TimePs,
    pub(crate) intervals: Vec<IntervalRecord>,
    pub(crate) profile: OfflineProfile,

    // Main-loop state surviving across `run_for` pauses.
    pub(crate) run_state: RunState,
}

// The slice scheduler in `mcd-core` moves paused processors between worker
// threads; everything inside (including the boxed controller, whose trait
// requires `Send`) must be owned state.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<McdProcessor>();
};

impl McdProcessor {
    /// Builds a processor from a configuration and a frequency controller.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    pub fn new(config: SimConfig, controller: Box<dyn FrequencyController>) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid simulator configuration: {e}"));
        let table = OperatingPointTable::from_params(&config.clock);
        let max_freq = table.max_point().freq_mhz;

        let synchronous = config.clocking == ClockingMode::FullySynchronous;
        let clocks: Vec<DomainClock> = DomainId::ALL
            .iter()
            .map(|&d| {
                let initial = controller
                    .initial_freq_mhz(d)
                    .map(|f| table.nearest(f).freq_mhz)
                    .unwrap_or(if d == DomainId::External {
                        config.clock.external_freq_mhz
                    } else {
                        max_freq
                    });
                // In fully synchronous mode every on-chip domain shares one
                // phase and has no jitter; in MCD mode each domain gets its
                // own randomized phase and jitter stream.
                let seed = if synchronous {
                    config.seed
                } else {
                    config.seed.wrapping_add(d.index() as u64 * 0x9e37)
                };
                DomainClock::new(
                    d,
                    initial,
                    config.clock.freq_change_rate_ns_per_mhz,
                    if synchronous {
                        0.0
                    } else {
                        config.clock.jitter_sigma_ps
                    },
                    seed,
                )
            })
            .collect();

        let sync = SyncWindow::new(if synchronous {
            0
        } else {
            config.clock.sync_window_ps
        });

        // Calendar buckets are quantized by each domain's settled period;
        // `end_interval` re-quantizes when the controller retargets a
        // domain.
        let mut granules = [0; 5];
        for d in DomainId::ALL {
            granules[d.index()] = clocks[d.index()].target_period_ps();
        }

        McdProcessor {
            predictor: BranchPredictor::new(config.arch.branch_predictor.clone()),
            l1i: Cache::new(config.arch.l1i),
            l1d: Cache::new(config.arch.l1d),
            l2: Cache::new(config.arch.l2),
            rename_alloc: RenameAllocator::new(
                config.arch.int_phys_regs,
                config.arch.fp_phys_regs,
                32,
                32,
            ),
            rename_map: RenameMap::new(),
            rob: ReorderBuffer::new(config.arch.rob_size),
            fetch_buffer: VecDeque::with_capacity(config.arch.fetch_buffer_size),
            fetch_stalled_until: 0,
            fetch_blocked_by: None,
            stream_done: false,
            int_iq: IssueQueue::new(config.arch.int_iq_size),
            fp_iq: IssueQueue::new(config.arch.fp_iq_size),
            lsq: LoadStoreQueue::new(config.arch.lsq_size),
            int_fus: FuPool::new(FuPoolConfig::integer_domain()),
            fp_fus: FuPool::new(FuPoolConfig::fp_domain()),
            mem_fus: FuPool::new(FuPoolConfig::loadstore_domain()),
            timeline: DomainTimeline::new(granules),
            inflight: InFlightTable::new(config.arch.rob_size),
            pending_predictions: VecDeque::with_capacity(config.arch.fetch_buffer_size),
            scratch_seqs: Vec::with_capacity(config.arch.lsq_size.max(config.arch.rob_size)),
            scratch_woken: Vec::with_capacity(config.arch.rob_size),
            scratch_events: Vec::with_capacity(config.arch.rob_size),
            scratch_ready: Vec::with_capacity(config.arch.rob_size),
            energy: EnergyAccount::new(config.energy.clone()),
            committed: 0,
            ann_fed: 0,
            ann_recomputed: 0,
            mispredict_redirects: 0,
            memory_accesses: 0,
            interval_index: 0,
            frontend_cycles_at_interval_start: 0,
            domain_counters: Default::default(),
            freq_acc: Default::default(),
            first_commit_ps: None,
            last_commit_ps: 0,
            intervals: Vec::new(),
            profile: OfflineProfile::new(),
            run_state: RunState::default(),
            clocks,
            sync,
            table,
            controller,
            config,
        }
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Pre-loads the cache hierarchy with the given `(base, length)`
    /// regions, modelling the warm caches a mid-execution simulation window
    /// starts with (the paper fast-forwards hundreds of millions of
    /// instructions before measuring).  The first region is treated as code
    /// (warms the L1 I-cache), the rest as data (warm the L1 D-cache up to
    /// its capacity and the L2 throughout).
    pub fn warm_caches(&mut self, regions: &[(u64, u64)]) {
        for (i, &(base, len)) in regions.iter().enumerate() {
            let line = 64u64;
            let mut addr = base & !(line - 1);
            let mut warmed = 0u64;
            while addr < base + len {
                self.l2.warm(addr);
                if i == 0 {
                    self.l1i.warm(addr);
                } else if warmed < self.config.arch.l1d.size_bytes {
                    self.l1d.warm(addr);
                }
                addr += line;
                warmed += line;
            }
        }
    }

    pub(crate) fn clock(&self, d: DomainId) -> &DomainClock {
        &self.clocks[d.index()]
    }

    pub(crate) fn voltage(&self, d: DomainId) -> f64 {
        if d == DomainId::External {
            return self.config.clock.max_voltage;
        }
        self.table
            .voltage_for_freq(self.clocks[d.index()].current_freq_mhz())
    }

    pub(crate) fn mcd_overhead(&self) -> f64 {
        match self.config.clocking {
            ClockingMode::Mcd => self.config.clock.mcd_clock_energy_overhead,
            ClockingMode::FullySynchronous => 0.0,
        }
    }

    /// Time at which a value produced at `t` in `from` becomes visible in
    /// `to`.
    pub(crate) fn cross_domain_visible(&self, t: TimePs, from: DomainId, to: DomainId) -> TimePs {
        if from == to {
            return t;
        }
        let dst = self.clock(to);
        self.sync
            .capture_time(t, dst.next_edge_ps(), dst.current_period_ps())
    }

    /// Fills the per-domain visibility vector for a result produced at `t`
    /// in `from`.
    pub(crate) fn visibility_vector(&self, t: TimePs, from: DomainId) -> [TimePs; 5] {
        let mut v = [t; 5];
        for d in DomainId::ALL {
            v[d.index()] = self.cross_domain_visible(t, from, d);
        }
        v
    }

    pub(crate) fn exec_domain_of(op: OpClass) -> DomainId {
        crate::inflight::exec_domain_of(op)
    }

    /// Per-cycle frequency bookkeeping shared by all domain cycles.
    pub(crate) fn accumulate_freq(&mut self, domain: DomainId) {
        let fa = &mut self.freq_acc[domain.index()];
        fa.weighted_sum += self.clocks[domain.index()].current_freq_mhz();
        fa.cycles += 1;
    }

    // ----------------------------------------------------------------
    // Control intervals.
    // ----------------------------------------------------------------

    pub(crate) fn end_interval(&mut self) {
        let fe_cycles_total = self.clocks[DomainId::FrontEnd.index()].cycles();
        let frontend_cycles = fe_cycles_total - self.frontend_cycles_at_interval_start;
        self.frontend_cycles_at_interval_start = fe_cycles_total;
        let instructions = self.config.interval_instructions;
        let ipc = if frontend_cycles == 0 {
            0.0
        } else {
            instructions as f64 / frontend_cycles as f64
        };

        let mut domain_samples = Vec::with_capacity(3);
        for d in CONTROLLABLE_DOMAINS {
            let util = match d {
                DomainId::Integer => self.int_iq.take_average_occupancy(),
                DomainId::FloatingPoint => self.fp_iq.take_average_occupancy(),
                DomainId::LoadStore => self.lsq.take_average_occupancy(),
                _ => 0.0,
            };
            let counters = &mut self.domain_counters[d.index()];
            let cycles = counters.cycles - counters.cycles_at_interval_start;
            counters.cycles_at_interval_start = counters.cycles;
            let busy = counters.busy_cycles;
            let issued = counters.issued;
            counters.busy_cycles = 0;
            counters.issued = 0;
            domain_samples.push(DomainSample {
                domain: d,
                queue_utilization: util,
                domain_cycles: cycles,
                busy_cycles: busy,
                issued_instructions: issued,
                freq_mhz: self.clocks[d.index()].target_freq_mhz(),
            });
        }

        // Profile for the off-line oracle.
        self.profile.push_interval(domain_samples.clone());

        let sample = IntervalSample {
            interval: self.interval_index,
            instructions,
            frontend_cycles,
            ipc,
            domains: domain_samples.clone(),
        };
        let commands = self.controller.interval_update(&sample);
        for cmd in commands {
            if !cmd.domain.is_controllable() {
                continue;
            }
            let point = self.table.nearest(cmd.target_freq_mhz);
            let clock = &mut self.clocks[cmd.domain.index()];
            clock.set_target_freq(point.freq_mhz);
            // Keep the calendar's time-to-bucket quantization in step with
            // the domain's settled period (a no-op when the target period
            // is unchanged; re-indexes the domain's pending events
            // otherwise).
            self.timeline
                .set_granule(cmd.domain, clock.target_period_ps());
        }

        if self.config.record_traces {
            self.intervals.push(IntervalRecord {
                interval: self.interval_index,
                committed: self.committed,
                ipc,
                domains: domain_samples
                    .iter()
                    .map(|s| DomainTrace {
                        domain: s.domain,
                        queue_utilization: s.queue_utilization,
                        freq_mhz: self.clocks[s.domain.index()].target_freq_mhz(),
                    })
                    .collect(),
            });
        }
        self.interval_index += 1;
    }

    // ----------------------------------------------------------------
    // Main loop.
    // ----------------------------------------------------------------

    /// Runs the processor on an instruction stream until the configured
    /// instruction budget is committed or the stream is exhausted and the
    /// pipeline has drained.  Returns the run telemetry.
    ///
    /// Equivalent to a single unbounded [`McdProcessor::run_for`] slice.
    ///
    /// # Panics
    ///
    /// Panics if the simulation makes no forward progress for an extended
    /// period (an internal invariant violation, not a legitimate outcome).
    pub fn run<S: InstructionStream>(&mut self, mut stream: S) -> SimResult {
        loop {
            if let StepOutcome::Finished(result) = self.run_for(&mut stream, u64::MAX) {
                return result;
            }
        }
    }

    /// Runs at most `max_cycles` kernel steps (one step = one domain-clock
    /// edge of one domain) and pauses, or finishes the run if the
    /// instruction budget is reached or the stream drains first.
    ///
    /// The slice boundary is invisible to the simulated machine: all
    /// loop-carried state lives in the processor, so any sequence of
    /// `run_for` calls — with any slice lengths, on any threads — produces
    /// a [`SimResult`] bit-identical to an unsliced [`McdProcessor::run`],
    /// provided every call resumes with the same (stateful) stream.  Host
    /// wall-clock is accumulated across slices, so the final
    /// [`HostStats`] describe the whole run, not the last slice.
    ///
    /// # Panics
    ///
    /// Panics if `max_cycles` is zero (a zero budget makes no progress, so
    /// the documented resume loop would spin forever), if called again
    /// after it returned [`StepOutcome::Finished`], or on a livelock (no
    /// commit for an extended simulated period).
    pub fn run_for<S: InstructionStream>(
        &mut self,
        stream: &mut S,
        max_cycles: u64,
    ) -> StepOutcome {
        assert!(max_cycles > 0, "slice budget must be positive");
        assert!(
            !self.run_state.done,
            "run_for called on a finished processor"
        );
        let wall_start = Instant::now();
        if self.run_state.start_ps.is_none() {
            let start_ps = self
                .clocks
                .iter()
                .map(|c| c.next_edge_ps())
                .min()
                .unwrap_or(0);
            self.run_state.start_ps = Some(start_ps);
            self.run_state.last_commit_check = (0, start_ps);
        }

        let mut steps = 0u64;
        let finished = loop {
            if self.committed >= self.config.max_instructions {
                break true;
            }
            if self.stream_done
                && self.fetch_buffer.is_empty()
                && self.rob.is_empty()
                && self.inflight.is_empty()
            {
                break true;
            }
            if steps >= max_cycles {
                break false;
            }
            steps += 1;

            // Pick the on-chip domain with the earliest pending edge: a
            // fixed two-round tournament over the four domains.  Ties must
            // break in `ON_CHIP_DOMAINS` order (front end first) — `<=`
            // keeps the earlier position on equal edges in both rounds,
            // reproducing the first-minimum semantics the historical
            // `min_by_key` over `ON_CHIP_DOMAINS` had.  Clocks are always
            // addressed through `DomainId::index`, so the tournament stays
            // correct even if the domain order or index mapping changes.
            const D: [DomainId; 4] = mcd_clock::ON_CHIP_DOMAINS;
            let edges = [
                self.clocks[D[0].index()].next_edge_ps(),
                self.clocks[D[1].index()].next_edge_ps(),
                self.clocks[D[2].index()].next_edge_ps(),
                self.clocks[D[3].index()].next_edge_ps(),
            ];
            let a = usize::from(edges[0] > edges[1]);
            let b = 2 + usize::from(edges[2] > edges[3]);
            let domain = D[if edges[a] <= edges[b] { a } else { b }];
            let now = self.clocks[domain.index()].advance();

            match domain {
                DomainId::FrontEnd => self.frontend_cycle(now, stream),
                DomainId::Integer | DomainId::FloatingPoint => self.exec_domain_cycle(domain, now),
                DomainId::LoadStore => self.loadstore_cycle(now),
                DomainId::External => {}
            }

            // Watchdog against livelock.
            if self.committed > self.run_state.last_commit_check.0 {
                self.run_state.last_commit_check = (self.committed, now);
            } else if now.saturating_sub(self.run_state.last_commit_check.1) > COMMIT_WATCHDOG_PS {
                panic!(
                    "simulator livelock: no commit for {} ps at instruction {}",
                    now - self.run_state.last_commit_check.1,
                    self.committed
                );
            }
        };

        self.run_state.wall_seconds += wall_start.elapsed().as_secs_f64();
        if finished {
            self.run_state.done = true;
            StepOutcome::Finished(self.finish())
        } else {
            StepOutcome::Paused
        }
    }

    // ----------------------------------------------------------------
    // Checkpointing.
    // ----------------------------------------------------------------

    /// Serializes every piece of loop-carried simulation state — the same
    /// state inventory that makes [`McdProcessor::run_for`] slice-invisible
    /// — so a paused run can be dropped and later restored bit-identically.
    ///
    /// The configuration and the controller's *identity* are deliberately
    /// not included: the snapshot container (`mcd-core`) records those in
    /// its header and hands [`McdProcessor::load`] a freshly built
    /// config/controller pair.  Only the controller's mutable state rides
    /// along here, via [`FrequencyController::save_state`].
    pub fn save(&self, w: &mut ByteWriter) {
        // Clocking.
        w.put_u8(self.clocks.len() as u8);
        for c in &self.clocks {
            c.save(w);
        }

        // Front end.
        self.predictor.save(w);
        self.l1i.save(w);
        self.rename_alloc.save(w);
        self.rename_map.save(w);
        self.rob.save(w);
        w.put_usize(self.fetch_buffer.len());
        for inst in &self.fetch_buffer {
            inst.encode(w);
        }
        w.put_u64(self.fetch_stalled_until);
        w.put_bool(self.fetch_blocked_by.is_some());
        if let Some(seq) = self.fetch_blocked_by {
            w.put_u64(seq);
        }
        w.put_bool(self.stream_done);

        // Execution domains.
        self.int_iq.save(w);
        self.fp_iq.save(w);
        self.lsq.save(w);
        self.int_fus.save(w);
        self.fp_fus.save(w);
        self.mem_fus.save(w);
        self.l1d.save(w);
        self.l2.save(w);
        self.timeline.save(w);

        // In-flight instructions and fetch-time predictions.
        self.inflight.save(w);
        w.put_usize(self.pending_predictions.len());
        for &(seq, p) in &self.pending_predictions {
            w.put_u64(seq);
            w.put_bool(p.taken);
            w.put_bool(p.target.is_some());
            if let Some(t) = p.target {
                w.put_u64(t);
            }
        }

        // Energy.
        self.energy.save(w);

        // Statistics.
        w.put_u64(self.committed);
        w.put_u64(self.mispredict_redirects);
        w.put_u64(self.memory_accesses);
        w.put_u64(self.interval_index);
        w.put_u64(self.frontend_cycles_at_interval_start);
        for c in &self.domain_counters {
            w.put_u64(c.cycles);
            w.put_u64(c.busy_cycles);
            w.put_u64(c.issued);
            w.put_u64(c.cycles_at_interval_start);
        }
        for fa in &self.freq_acc {
            w.put_f64(fa.weighted_sum);
            w.put_u64(fa.cycles);
        }
        w.put_bool(self.first_commit_ps.is_some());
        if let Some(t) = self.first_commit_ps {
            w.put_u64(t);
        }
        w.put_u64(self.last_commit_ps);
        w.put_usize(self.intervals.len());
        for rec in &self.intervals {
            rec.save(w);
        }
        self.profile.save(w);

        // Main-loop state.
        w.put_bool(self.run_state.start_ps.is_some());
        if let Some(t) = self.run_state.start_ps {
            w.put_u64(t);
        }
        w.put_u64(self.run_state.last_commit_check.0);
        w.put_u64(self.run_state.last_commit_check.1);
        // `wall_seconds` is host telemetry (excluded from result equality)
        // and would make snapshot bytes nondeterministic; it restarts from
        // zero after a restore.
        w.put_bool(self.run_state.done);

        // Controller-mutable state (layout owned by the controller).
        self.controller.save_state(w);
    }

    /// Rebuilds a processor from [`McdProcessor::save`] output.
    ///
    /// `config` must equal the saved processor's configuration and
    /// `controller` must be a freshly built controller of the same kind and
    /// parameters; the snapshot container is responsible for both (it
    /// stores their identity in its header).  The controller's mutable
    /// state is then restored via [`FrequencyController::load_state`].
    ///
    /// # Errors
    ///
    /// Returns a decode error on truncation or any malformed component.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`SimConfig::validate`].
    pub fn load(
        r: &mut ByteReader<'_>,
        config: SimConfig,
        controller: Box<dyn FrequencyController>,
    ) -> CodecResult<Self> {
        let energy_params = config.energy.clone();
        let mut cpu = McdProcessor::new(config, controller);

        // Clocking.
        let n_clocks = r.u8()?;
        if usize::from(n_clocks) != DomainId::ALL.len() {
            return Err(CodecError::BadTag {
                what: "processor clock count",
                got: u64::from(n_clocks),
            });
        }
        for (i, slot) in cpu.clocks.iter_mut().enumerate() {
            let clock = DomainClock::load(r)?;
            if clock.domain().index() != i {
                return Err(CodecError::BadTag {
                    what: "processor clock order",
                    got: clock.domain().index() as u64,
                });
            }
            *slot = clock;
        }

        // Front end.
        cpu.predictor = BranchPredictor::load(r)?;
        cpu.l1i = Cache::load(r)?;
        cpu.rename_alloc = RenameAllocator::load(r)?;
        cpu.rename_map = RenameMap::load(r)?;
        cpu.rob = ReorderBuffer::load(r)?;
        let n_fetch = r.usize()?;
        cpu.fetch_buffer.clear();
        for _ in 0..n_fetch {
            cpu.fetch_buffer.push_back(DynInst::decode(r)?);
        }
        cpu.fetch_stalled_until = r.u64()?;
        cpu.fetch_blocked_by = if r.bool()? { Some(r.u64()?) } else { None };
        cpu.stream_done = r.bool()?;

        // Execution domains.
        cpu.int_iq = IssueQueue::load(r)?;
        cpu.fp_iq = IssueQueue::load(r)?;
        cpu.lsq = LoadStoreQueue::load(r)?;
        cpu.int_fus = FuPool::load(r)?;
        cpu.fp_fus = FuPool::load(r)?;
        cpu.mem_fus = FuPool::load(r)?;
        cpu.l1d = Cache::load(r)?;
        cpu.l2 = Cache::load(r)?;
        cpu.timeline = DomainTimeline::load(r)?;

        // In-flight instructions and fetch-time predictions.
        cpu.inflight = InFlightTable::load(r)?;
        let n_preds = r.usize()?;
        cpu.pending_predictions.clear();
        for _ in 0..n_preds {
            let seq = r.u64()?;
            let taken = r.bool()?;
            let target = if r.bool()? { Some(r.u64()?) } else { None };
            cpu.pending_predictions
                .push_back((seq, Prediction { taken, target }));
        }

        // Energy.
        cpu.energy = EnergyAccount::load(r, energy_params)?;

        // Statistics.
        cpu.committed = r.u64()?;
        cpu.mispredict_redirects = r.u64()?;
        cpu.memory_accesses = r.u64()?;
        cpu.interval_index = r.u64()?;
        cpu.frontend_cycles_at_interval_start = r.u64()?;
        for c in &mut cpu.domain_counters {
            c.cycles = r.u64()?;
            c.busy_cycles = r.u64()?;
            c.issued = r.u64()?;
            c.cycles_at_interval_start = r.u64()?;
        }
        for fa in &mut cpu.freq_acc {
            fa.weighted_sum = r.f64()?;
            fa.cycles = r.u64()?;
        }
        cpu.first_commit_ps = if r.bool()? { Some(r.u64()?) } else { None };
        cpu.last_commit_ps = r.u64()?;
        let n_intervals = r.usize()?;
        cpu.intervals.clear();
        for _ in 0..n_intervals {
            cpu.intervals.push(IntervalRecord::load(r)?);
        }
        cpu.profile = OfflineProfile::load(r)?;

        // Main-loop state.
        cpu.run_state.start_ps = if r.bool()? { Some(r.u64()?) } else { None };
        cpu.run_state.last_commit_check = (r.u64()?, r.u64()?);
        cpu.run_state.wall_seconds = 0.0;
        cpu.run_state.done = r.bool()?;

        // Controller-mutable state.
        cpu.controller.load_state(r)?;

        Ok(cpu)
    }

    /// Committed-instruction count so far (used by the snapshot container
    /// for bundle naming and prefix-fork bookkeeping).
    pub fn committed_instructions(&self) -> u64 {
        self.committed
    }

    /// Whether the run has finished (a finished processor must not be
    /// stepped or snapshotted-for-resume).
    pub fn is_done(&self) -> bool {
        self.run_state.done
    }

    /// Zero-based index of the control interval currently accumulating.
    ///
    /// A checkpoint is shareable across controller configurations only
    /// while this is still 0: controllers act exclusively at interval
    /// boundaries, so before the first boundary the runs differ only in
    /// their initial domain frequencies (which the prefix key hashes).
    pub fn interval_index(&self) -> u64 {
        self.interval_index
    }

    /// Replaces the frequency controller in place (the prefix-fork path:
    /// a warm-up checkpoint restored for a different configuration swaps
    /// in that configuration's freshly constructed controller).
    ///
    /// Sound only in the window where the two runs are still
    /// indistinguishable: before the first interval boundary, and only
    /// for a controller whose initial domain frequencies match the ones
    /// this machine was built with (the caller's prefix key hashes them).
    ///
    /// # Panics
    ///
    /// Panics after the first interval boundary — past it the departing
    /// controller has already steered the machine, so swapping would
    /// splice one configuration's trajectory onto another's state.
    pub fn replace_controller(&mut self, controller: Box<dyn FrequencyController>) {
        assert_eq!(
            self.interval_index, 0,
            "controller swap after an interval boundary"
        );
        self.controller = controller;
    }

    fn finish(&mut self) -> SimResult {
        self.controller.finish();
        let start_ps = self.run_state.start_ps.unwrap_or(0);
        let elapsed = self.last_commit_ps.saturating_sub(start_ps).max(1);
        let avg_domain_freq_mhz = CONTROLLABLE_DOMAINS
            .iter()
            .map(|&d| {
                let fa = &self.freq_acc[d.index()];
                let avg = if fa.cycles == 0 {
                    self.clocks[d.index()].current_freq_mhz()
                } else {
                    fa.weighted_sum / fa.cycles as f64
                };
                (d, avg as MegaHertz)
            })
            .collect();

        // Wall-clock accumulated over every slice of the run (slices may
        // have executed on different worker threads).
        let mut host = HostStats::from_run(self.committed, self.run_state.wall_seconds);
        host.events = self.timeline.stats();
        host.ann_fed = self.ann_fed;
        host.ann_recomputed = self.ann_recomputed;

        SimResult {
            committed_instructions: self.committed,
            frontend_cycles: self.clocks[DomainId::FrontEnd.index()].cycles(),
            elapsed_ps: elapsed,
            energy: self.energy.breakdown(),
            branch_stats: self.predictor.stats(),
            l1i_stats: self.l1i.stats(),
            l1d_stats: self.l1d.stats(),
            l2_stats: self.l2.stats(),
            memory_accesses: self.memory_accesses,
            mispredict_redirects: self.mispredict_redirects,
            intervals: std::mem::take(&mut self.intervals),
            profile: std::mem::take(&mut self.profile),
            avg_domain_freq_mhz,
            host,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_control::{AttackDecayController, AttackDecayParams, FixedController};
    use mcd_power::Structure;
    use mcd_workloads::{Benchmark, WorkloadGenerator};

    fn run_benchmark(
        bench: Benchmark,
        insts: u64,
        config: SimConfig,
        controller: Box<dyn FrequencyController>,
    ) -> SimResult {
        let stream = WorkloadGenerator::new(&bench.spec(), 42, insts);
        let mut cpu = McdProcessor::new(config, controller);
        cpu.run(stream)
    }

    #[test]
    fn baseline_run_commits_all_instructions() {
        let r = run_benchmark(
            Benchmark::Adpcm,
            30_000,
            SimConfig::baseline_mcd(30_000),
            Box::new(FixedController::at_max()),
        );
        assert_eq!(r.committed_instructions, 30_000);
        assert!(r.cpi() > 0.2 && r.cpi() < 10.0, "cpi = {}", r.cpi());
        assert!(r.elapsed_ps > 0);
        assert!(r.chip_energy() > 0.0);
        assert!(r.branch_stats.direction_predictions > 0);
        // Host-throughput telemetry is populated.
        assert!(r.host.wall_seconds > 0.0);
        assert!(r.host.simulated_mips > 0.0);
    }

    #[test]
    fn results_are_deterministic() {
        let a = run_benchmark(
            Benchmark::Gsm,
            20_000,
            SimConfig::baseline_mcd(20_000),
            Box::new(FixedController::at_max()),
        );
        let b = run_benchmark(
            Benchmark::Gsm,
            20_000,
            SimConfig::baseline_mcd(20_000),
            Box::new(FixedController::at_max()),
        );
        assert_eq!(a.committed_instructions, b.committed_instructions);
        assert_eq!(a.frontend_cycles, b.frontend_cycles);
        assert_eq!(a.elapsed_ps, b.elapsed_ps);
        assert!((a.chip_energy() - b.chip_energy()).abs() < 1e-9);
    }

    #[test]
    fn synchronous_processor_is_at_least_as_fast_as_mcd_baseline() {
        let sync = run_benchmark(
            Benchmark::Gzip,
            40_000,
            SimConfig::fully_synchronous(40_000),
            Box::new(FixedController::at_max()),
        );
        let mcd = run_benchmark(
            Benchmark::Gzip,
            40_000,
            SimConfig::baseline_mcd(40_000),
            Box::new(FixedController::at_max()),
        );
        // The MCD baseline pays synchronization penalties: slower, and with
        // extra clock energy.  The paper puts the inherent degradation below
        // a few percent.
        let degradation = mcd.elapsed_ps as f64 / sync.elapsed_ps as f64 - 1.0;
        assert!(
            degradation > -0.01,
            "MCD baseline should not be faster than the synchronous processor ({degradation})"
        );
        assert!(
            degradation < 0.10,
            "MCD inherent degradation should be small, got {degradation}"
        );
        assert!(mcd.chip_energy() > sync.chip_energy());
    }

    #[test]
    fn memory_bound_workload_misses_to_main_memory() {
        let r = run_benchmark(
            Benchmark::Mcf,
            30_000,
            SimConfig::baseline_mcd(30_000),
            Box::new(FixedController::at_max()),
        );
        assert!(
            r.memory_accesses > 50,
            "mcf should miss to memory, got {}",
            r.memory_accesses
        );
        assert!(r.l2_stats.misses > 50);
        // Memory-bound code has a much higher CPI than cache-resident code.
        let fast = run_benchmark(
            Benchmark::Adpcm,
            30_000,
            SimConfig::baseline_mcd(30_000),
            Box::new(FixedController::at_max()),
        );
        assert!(r.cpi() > fast.cpi());
    }

    #[test]
    fn fp_workload_exercises_the_fp_domain() {
        let fp = run_benchmark(
            Benchmark::Swim,
            30_000,
            SimConfig::baseline_mcd(30_000),
            Box::new(FixedController::at_max()),
        );
        let int = run_benchmark(
            Benchmark::Gzip,
            30_000,
            SimConfig::baseline_mcd(30_000),
            Box::new(FixedController::at_max()),
        );
        // Compare the FP ALU's *share* of chip energy so that differing run
        // lengths (and therefore differing idle-gating charges) cancel out.
        let fp_share = fp.energy.structure(Structure::FpAlu) / fp.chip_energy();
        let int_share = int.energy.structure(Structure::FpAlu) / int.chip_energy();
        assert!(
            fp_share > int_share,
            "swim's FP ALU share ({fp_share:.4}) must exceed gzip's ({int_share:.4})"
        );
    }

    #[test]
    fn pinning_a_domain_low_slows_execution_and_saves_domain_energy() {
        let base = run_benchmark(
            Benchmark::Gzip,
            30_000,
            SimConfig::baseline_mcd(30_000),
            Box::new(FixedController::at_max()),
        );
        let slowed = run_benchmark(
            Benchmark::Gzip,
            30_000,
            SimConfig::baseline_mcd(30_000),
            Box::new(FixedController::pinned(vec![(DomainId::Integer, 250.0)])),
        );
        assert!(
            slowed.elapsed_ps > base.elapsed_ps,
            "slowing the integer domain must cost time"
        );
        assert!(
            slowed.energy.domain(DomainId::Integer) < base.energy.domain(DomainId::Integer),
            "integer-domain energy must fall at 250 MHz / 0.65 V"
        );
    }

    #[test]
    fn attack_decay_controller_changes_domain_frequencies() {
        let mut cfg = SimConfig::baseline_mcd(120_000);
        cfg.record_traces = true;
        let table = OperatingPointTable::from_params(&cfg.clock);
        let ctrl = AttackDecayController::new(AttackDecayParams::paper_defaults(), &table);
        let r = run_benchmark(Benchmark::Gzip, 120_000, cfg, Box::new(ctrl));
        assert_eq!(r.committed_instructions, 120_000);
        assert!(!r.intervals.is_empty());
        // The FP domain is unused by gzip: the controller must have decayed
        // its frequency below the maximum by the end of the run.
        let last = r.intervals.last().unwrap();
        let fp_last = last.domain(DomainId::FloatingPoint).unwrap().freq_mhz;
        assert!(
            fp_last < 995.0,
            "unused FP domain should have decayed, final target = {fp_last}"
        );
        let fp_avg = r.avg_freq(DomainId::FloatingPoint).unwrap();
        assert!(
            fp_avg < 1000.0,
            "average must reflect the decay, avg = {fp_avg}"
        );
    }

    #[test]
    fn profile_is_recorded_for_offline_oracle() {
        let r = run_benchmark(
            Benchmark::Epic,
            40_000,
            SimConfig::baseline_mcd(40_000),
            Box::new(FixedController::at_max()),
        );
        assert_eq!(r.profile.len() as u64, 40_000 / 10_000);
    }

    #[test]
    fn short_stream_drains_cleanly() {
        // Stream shorter than the instruction budget: the pipeline drains
        // and the run ends without hitting the watchdog.
        let stream = WorkloadGenerator::new(&Benchmark::Adpcm.spec(), 3, 5_000);
        let mut cpu = McdProcessor::new(
            SimConfig::baseline_mcd(1_000_000),
            Box::new(FixedController::at_max()),
        );
        let r = cpu.run(stream);
        assert_eq!(r.committed_instructions, 5_000);
    }

    #[test]
    fn sequence_numbers_wrapping_past_rob_size_do_not_alias() {
        // End-to-end slab-reuse regression test: a run of many times the
        // ROB size in instructions forces every slot of the in-flight slab
        // to be reused dozens of times.  Any aliasing of stale entries
        // would either trip the slab's collision panic, deadlock issue
        // (operands never ready -> watchdog panic), or corrupt the commit
        // count.
        let insts = 25_000; // ~300x the 80-entry ROB
        let r = run_benchmark(
            Benchmark::Gsm,
            insts,
            SimConfig::baseline_mcd(insts),
            Box::new(FixedController::at_max()),
        );
        assert_eq!(r.committed_instructions, insts);
    }

    #[test]
    #[should_panic(expected = "invalid simulator configuration")]
    fn invalid_config_panics() {
        let mut cfg = SimConfig::baseline_mcd(0);
        cfg.max_instructions = 0;
        let _ = McdProcessor::new(cfg, Box::new(FixedController::at_max()));
    }

    /// Runs `bench` pausing every `slice` kernel steps; the slice
    /// boundaries must be invisible in the result.
    fn run_sliced(bench: Benchmark, insts: u64, cfg: SimConfig, slice: u64) -> (SimResult, u64) {
        let mut stream = WorkloadGenerator::new(&bench.spec(), 42, insts);
        let mut cpu = McdProcessor::new(cfg, Box::new(FixedController::at_max()));
        let mut pauses = 0;
        loop {
            match cpu.run_for(&mut stream, slice) {
                StepOutcome::Paused => pauses += 1,
                StepOutcome::Finished(r) => return (r, pauses),
            }
        }
    }

    #[test]
    fn sliced_run_is_bit_identical_to_unsliced() {
        let insts = 8_000;
        let unsliced = run_benchmark(
            Benchmark::Gzip,
            insts,
            SimConfig::baseline_mcd(insts),
            Box::new(FixedController::at_max()),
        );
        for slice in [1_000, 7, 1] {
            let (sliced, pauses) = run_sliced(
                Benchmark::Gzip,
                insts,
                SimConfig::baseline_mcd(insts),
                slice,
            );
            assert!(pauses > 0, "slice {slice} must actually pause");
            assert_eq!(sliced, unsliced, "slice length {slice} changed the result");
        }
        // A slice larger than the whole run finishes without pausing.
        let (big, pauses) = run_sliced(
            Benchmark::Gzip,
            insts,
            SimConfig::baseline_mcd(insts),
            u64::MAX,
        );
        assert_eq!(pauses, 0);
        assert_eq!(big, unsliced);
    }

    #[test]
    fn sliced_host_stats_accumulate_across_slices() {
        // HostStats must describe the whole run, not the last slice.  Time
        // every slice externally: the reported wall-clock must be close to
        // the externally measured total (it can never exceed it, and a
        // regression to "last slice only" would report a small fraction of
        // it), and the simulated MIPS must be derived from that total.
        let insts = 5_000;
        let mut stream = WorkloadGenerator::new(&Benchmark::Gzip.spec(), 42, insts);
        let mut cpu = McdProcessor::new(
            SimConfig::baseline_mcd(insts),
            Box::new(FixedController::at_max()),
        );
        let mut external_total = 0.0f64;
        let mut slices = Vec::new();
        let r = loop {
            let t = Instant::now();
            let outcome = cpu.run_for(&mut stream, 500);
            let elapsed = t.elapsed().as_secs_f64();
            external_total += elapsed;
            slices.push(elapsed);
            if let StepOutcome::Finished(r) = outcome {
                break r;
            }
        };
        assert!(slices.len() > 10, "the run must have spanned many slices");
        assert!(
            r.host.wall_seconds <= external_total,
            "reported wall-clock cannot exceed the externally timed total"
        );
        let max_slice = slices.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            r.host.wall_seconds > external_total - 2.0 * max_slice,
            "reported wall-clock ({}) must cover (nearly) all {} slices \
             (external total {external_total}), not just the last one",
            r.host.wall_seconds,
            slices.len()
        );
        let implied_mips = r.committed_instructions as f64 / r.host.wall_seconds / 1e6;
        assert!(
            (r.host.simulated_mips - implied_mips).abs() < 1e-9,
            "simulated MIPS must be derived from the accumulated wall-clock"
        );
    }

    #[test]
    fn run_for_reports_paused_until_finished() {
        let insts = 2_000;
        let mut stream = WorkloadGenerator::new(&Benchmark::Adpcm.spec(), 42, insts);
        let mut cpu = McdProcessor::new(
            SimConfig::baseline_mcd(insts),
            Box::new(FixedController::at_max()),
        );
        // One kernel step cannot commit the whole budget.
        assert!(matches!(cpu.run_for(&mut stream, 1), StepOutcome::Paused));
        assert!(cpu.committed < insts);
        let r = loop {
            if let StepOutcome::Finished(r) = cpu.run_for(&mut stream, 10_000) {
                break r;
            }
        };
        assert_eq!(r.committed_instructions, insts);
    }

    /// Runs `bench` to `pause_at` kernel steps, saves the processor, drops
    /// it, restores it into a fresh controller, and finishes the run; the
    /// result must be bit-identical to an uninterrupted run.  Exercises the
    /// complete state inventory: clocks mid-ramp, in-flight slab, LSQ,
    /// timelines, telemetry and the controller's state machine.
    fn save_restore_round_trip(
        cfg: SimConfig,
        make_controller: impl Fn() -> Box<dyn FrequencyController>,
        pause_at: u64,
    ) {
        use serde::codec::{ByteReader, ByteWriter};

        let insts = cfg.max_instructions;
        let spec = Benchmark::Gzip.spec();
        let stream = WorkloadGenerator::new(&spec, 42, insts);
        let mut reference = McdProcessor::new(cfg.clone(), make_controller());
        let unsliced = reference.run(stream);

        let mut stream = WorkloadGenerator::new(&spec, 42, insts);
        let mut cpu = McdProcessor::new(cfg.clone(), make_controller());
        assert!(matches!(
            cpu.run_for(&mut stream, pause_at),
            StepOutcome::Paused
        ));
        let mut w = ByteWriter::new();
        cpu.save(&mut w);
        stream.save(&mut w);
        let bytes = w.into_vec();
        drop(cpu);
        drop(stream);

        let mut r = ByteReader::new(&bytes);
        let mut cpu = McdProcessor::load(&mut r, cfg, make_controller()).expect("restore");
        let mut stream = WorkloadGenerator::load(&mut r, &spec, 42, insts).expect("stream restore");
        r.finish().expect("no trailing bytes");
        let restored = loop {
            if let StepOutcome::Finished(res) = cpu.run_for(&mut stream, u64::MAX) {
                break res;
            }
        };
        assert_eq!(restored, unsliced, "restore at step {pause_at} diverged");
    }

    #[test]
    fn save_restore_is_bit_identical_with_fixed_controller() {
        for pause_at in [1, 500, 9_999] {
            save_restore_round_trip(
                SimConfig::baseline_mcd(6_000),
                || Box::new(FixedController::at_max()),
                pause_at,
            );
        }
    }

    #[test]
    fn save_restore_is_bit_identical_mid_ramp_with_attack_decay() {
        // 35k instructions crosses several control intervals, so pausing at
        // an odd step count lands mid-ramp with the controller's
        // state machine warm and traces partially recorded.
        let mut cfg = SimConfig::baseline_mcd(35_000);
        cfg.record_traces = true;
        let table = OperatingPointTable::from_params(&cfg.clock);
        for pause_at in [7_321, 60_001] {
            save_restore_round_trip(
                cfg.clone(),
                || {
                    Box::new(AttackDecayController::new(
                        AttackDecayParams::paper_defaults(),
                        &table,
                    ))
                },
                pause_at,
            );
        }
    }

    #[test]
    fn load_rejects_a_truncated_snapshot() {
        use serde::codec::{ByteReader, ByteWriter};

        let cfg = SimConfig::baseline_mcd(2_000);
        let mut stream = WorkloadGenerator::new(&Benchmark::Gzip.spec(), 42, 2_000);
        let mut cpu = McdProcessor::new(cfg.clone(), Box::new(FixedController::at_max()));
        let _ = cpu.run_for(&mut stream, 300);
        let mut w = ByteWriter::new();
        cpu.save(&mut w);
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes[..bytes.len() / 2]);
        assert!(McdProcessor::load(&mut r, cfg, Box::new(FixedController::at_max())).is_err());
    }

    #[test]
    #[should_panic(expected = "finished processor")]
    fn stepping_a_finished_processor_panics() {
        let mut stream = WorkloadGenerator::new(&Benchmark::Adpcm.spec(), 42, 500);
        let mut cpu = McdProcessor::new(
            SimConfig::baseline_mcd(500),
            Box::new(FixedController::at_max()),
        );
        loop {
            if let StepOutcome::Finished(_) = cpu.run_for(&mut stream, u64::MAX) {
                break;
            }
        }
        let _ = cpu.run_for(&mut stream, 1);
    }
}
