//! The MCD out-of-order processor model and its simulation loop.
//!
//! The simulator is time driven at domain-cycle granularity: each of the
//! four on-chip domains has its own [`DomainClock`]; the main loop always
//! advances to the earliest pending clock edge and executes one cycle of
//! that domain.  Values crossing a domain boundary (dispatch into an issue
//! queue, cross-domain operand wakeup, completion reports to the ROB,
//! cache-miss traffic to memory) become visible in the destination domain
//! only at the capture time computed by the [`SyncWindow`] rule, which is
//! how the MCD synchronization penalties of the paper arise.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use mcd_clock::{
    DomainClock, DomainId, MegaHertz, OperatingPointTable, SyncWindow, TimePs, CONTROLLABLE_DOMAINS,
};
use mcd_control::{DomainSample, FrequencyController, IntervalSample, OfflineProfile};
use mcd_isa::{DynInst, ExecClass, InstructionStream, OpClass, SeqNum};
use mcd_microarch::{
    BranchPredictor, Cache, FuKind, FuPool, FuPoolConfig, IssueQueue, LoadStoreQueue, LsqIssue,
    Prediction, RenameAllocator, RenameMap, ReorderBuffer, RobEntry,
};
use mcd_power::{EnergyAccount, Structure};

use crate::config::{ClockingMode, SimConfig};
use crate::telemetry::{DomainTrace, IntervalRecord, SimResult};

/// Abort the run if no instruction commits for this much simulated time
/// (catches simulator bugs rather than real behaviour: even a chain of
/// serialized main-memory misses commits every ~100 ns).
const COMMIT_WATCHDOG_PS: TimePs = 200_000_000;

/// Book-keeping for one in-flight instruction.
#[derive(Debug, Clone)]
struct InFlight {
    inst: DynInst,
    /// Sequence numbers of the producers of this instruction's sources.
    producers: Vec<SeqNum>,
    /// Whether execution finished.
    completed: bool,
    /// Time at which the result is visible in each domain (index =
    /// `DomainId::index`), valid once `completed`.
    visible_at: [TimePs; 5],
    /// Whether the instruction has been issued to a functional unit.
    issued: bool,
    /// Fetch-time branch prediction (branches only).
    prediction: Option<Prediction>,
    /// Whether the branch was mispredicted (direction or target).
    mispredicted: bool,
}

/// Per-domain interval counters feeding the controller.
#[derive(Debug, Clone, Copy, Default)]
struct DomainIntervalCounters {
    cycles: u64,
    busy_cycles: u64,
    issued: u64,
    cycles_at_interval_start: u64,
}

/// Per-domain cycle-weighted frequency accumulator (for reports).
#[derive(Debug, Clone, Copy, Default)]
struct FreqAccumulator {
    weighted_sum: f64,
    cycles: u64,
}

/// The simulated MCD processor.
pub struct McdProcessor {
    config: SimConfig,
    table: OperatingPointTable,
    controller: Box<dyn FrequencyController>,

    // Clocking.
    clocks: Vec<DomainClock>,
    sync: SyncWindow,

    // Front end.
    predictor: BranchPredictor,
    l1i: Cache,
    rename_alloc: RenameAllocator,
    rename_map: RenameMap,
    rob: ReorderBuffer,
    fetch_buffer: std::collections::VecDeque<DynInst>,
    fetch_stalled_until: TimePs,
    fetch_blocked_by: Option<SeqNum>,
    stream_done: bool,

    // Execution domains.
    int_iq: IssueQueue,
    fp_iq: IssueQueue,
    lsq: LoadStoreQueue,
    int_fus: FuPool,
    fp_fus: FuPool,
    mem_fus: FuPool,
    l1d: Cache,
    l2: Cache,
    /// Pending completions per domain: (completion time, seq).
    pending_completions: Vec<Vec<(TimePs, SeqNum)>>,

    // In-flight instruction table.
    inflight: HashMap<SeqNum, InFlight>,
    /// Predictions made at fetch time, consumed at dispatch.
    pending_predictions: HashMap<SeqNum, Prediction>,

    // Energy.
    energy: EnergyAccount,

    // Statistics.
    committed: u64,
    mispredict_redirects: u64,
    memory_accesses: u64,
    interval_index: u64,
    frontend_cycles_at_interval_start: u64,
    domain_counters: [DomainIntervalCounters; 5],
    freq_acc: [FreqAccumulator; 5],
    first_commit_ps: Option<TimePs>,
    last_commit_ps: TimePs,
    intervals: Vec<IntervalRecord>,
    profile: OfflineProfile,
    #[allow(dead_code)]
    rng: StdRng,
}

impl McdProcessor {
    /// Builds a processor from a configuration and a frequency controller.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    pub fn new(config: SimConfig, controller: Box<dyn FrequencyController>) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid simulator configuration: {e}"));
        let table = OperatingPointTable::from_params(&config.clock);
        let max_freq = table.max_point().freq_mhz;

        let synchronous = config.clocking == ClockingMode::FullySynchronous;
        let clocks: Vec<DomainClock> = DomainId::ALL
            .iter()
            .map(|&d| {
                let initial = controller
                    .initial_freq_mhz(d)
                    .map(|f| table.nearest(f).freq_mhz)
                    .unwrap_or(if d == DomainId::External {
                        config.clock.external_freq_mhz
                    } else {
                        max_freq
                    });
                // In fully synchronous mode every on-chip domain shares one
                // phase and has no jitter; in MCD mode each domain gets its
                // own randomized phase and jitter stream.
                let seed = if synchronous {
                    config.seed
                } else {
                    config.seed.wrapping_add(d.index() as u64 * 0x9e37)
                };
                DomainClock::new(
                    d,
                    initial,
                    config.clock.freq_change_rate_ns_per_mhz,
                    if synchronous { 0.0 } else { config.clock.jitter_sigma_ps },
                    seed,
                )
            })
            .collect();

        let sync = SyncWindow::new(if synchronous { 0 } else { config.clock.sync_window_ps });

        McdProcessor {
            predictor: BranchPredictor::new(config.arch.branch_predictor.clone()),
            l1i: Cache::new(config.arch.l1i),
            l1d: Cache::new(config.arch.l1d),
            l2: Cache::new(config.arch.l2),
            rename_alloc: RenameAllocator::new(
                config.arch.int_phys_regs,
                config.arch.fp_phys_regs,
                32,
                32,
            ),
            rename_map: RenameMap::new(),
            rob: ReorderBuffer::new(config.arch.rob_size),
            fetch_buffer: std::collections::VecDeque::with_capacity(config.arch.fetch_buffer_size),
            fetch_stalled_until: 0,
            fetch_blocked_by: None,
            stream_done: false,
            int_iq: IssueQueue::new(config.arch.int_iq_size),
            fp_iq: IssueQueue::new(config.arch.fp_iq_size),
            lsq: LoadStoreQueue::new(config.arch.lsq_size),
            int_fus: FuPool::new(FuPoolConfig::integer_domain()),
            fp_fus: FuPool::new(FuPoolConfig::fp_domain()),
            mem_fus: FuPool::new(FuPoolConfig::loadstore_domain()),
            pending_completions: vec![Vec::new(); 5],
            inflight: HashMap::new(),
            pending_predictions: HashMap::new(),
            energy: EnergyAccount::new(config.energy.clone()),
            committed: 0,
            mispredict_redirects: 0,
            memory_accesses: 0,
            interval_index: 0,
            frontend_cycles_at_interval_start: 0,
            domain_counters: Default::default(),
            freq_acc: Default::default(),
            first_commit_ps: None,
            last_commit_ps: 0,
            intervals: Vec::new(),
            profile: OfflineProfile::new(),
            rng: StdRng::seed_from_u64(config.seed ^ 0x5eed),
            clocks,
            sync,
            table,
            controller,
            config,
        }
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Pre-loads the cache hierarchy with the given `(base, length)`
    /// regions, modelling the warm caches a mid-execution simulation window
    /// starts with (the paper fast-forwards hundreds of millions of
    /// instructions before measuring).  The first region is treated as code
    /// (warms the L1 I-cache), the rest as data (warm the L1 D-cache up to
    /// its capacity and the L2 throughout).
    pub fn warm_caches(&mut self, regions: &[(u64, u64)]) {
        for (i, &(base, len)) in regions.iter().enumerate() {
            let line = 64u64;
            let mut addr = base & !(line - 1);
            let mut warmed = 0u64;
            while addr < base + len {
                self.l2.warm(addr);
                if i == 0 {
                    self.l1i.warm(addr);
                } else if warmed < self.config.arch.l1d.size_bytes {
                    self.l1d.warm(addr);
                }
                addr += line;
                warmed += line;
            }
        }
    }

    fn clock(&self, d: DomainId) -> &DomainClock {
        &self.clocks[d.index()]
    }

    fn voltage(&self, d: DomainId) -> f64 {
        if d == DomainId::External {
            return self.config.clock.max_voltage;
        }
        self.table.voltage_for_freq(self.clocks[d.index()].current_freq_mhz())
    }

    fn mcd_overhead(&self) -> f64 {
        match self.config.clocking {
            ClockingMode::Mcd => self.config.clock.mcd_clock_energy_overhead,
            ClockingMode::FullySynchronous => 0.0,
        }
    }

    /// Time at which a value produced at `t` in `from` becomes visible in
    /// `to`.
    fn cross_domain_visible(&self, t: TimePs, from: DomainId, to: DomainId) -> TimePs {
        if from == to {
            return t;
        }
        let dst = self.clock(to);
        self.sync.capture_time(t, dst.next_edge_ps(), dst.current_period_ps())
    }

    /// Fills the per-domain visibility vector for a result produced at `t`
    /// in `from`.
    fn visibility_vector(&self, t: TimePs, from: DomainId) -> [TimePs; 5] {
        let mut v = [t; 5];
        for d in DomainId::ALL {
            v[d.index()] = self.cross_domain_visible(t, from, d);
        }
        v
    }

    /// Whether the producer `seq` has a result visible in `domain` at
    /// `now`.  Retired producers are always visible (their value lives in
    /// architectural state).
    fn producer_ready(&self, seq: SeqNum, domain: DomainId, now: TimePs) -> bool {
        match self.inflight.get(&seq) {
            None => true,
            Some(p) => p.completed && p.visible_at[domain.index()] <= now,
        }
    }

    fn operands_ready(&self, seq: SeqNum, domain: DomainId, now: TimePs) -> bool {
        let Some(entry) = self.inflight.get(&seq) else {
            return false;
        };
        entry
            .producers
            .iter()
            .all(|&p| self.producer_ready(p, domain, now))
    }

    fn exec_domain_of(op: OpClass) -> DomainId {
        match op.exec_class() {
            ExecClass::IntAlu | ExecClass::IntMultDiv | ExecClass::Branch => DomainId::Integer,
            ExecClass::FpAlu | ExecClass::FpMultDiv => DomainId::FloatingPoint,
            ExecClass::Mem => DomainId::LoadStore,
            ExecClass::None => DomainId::Integer,
        }
    }

    // ----------------------------------------------------------------
    // Front-end cycle.
    // ----------------------------------------------------------------

    fn frontend_cycle(&mut self, now: TimePs, stream: &mut dyn InstructionStream) {
        let voltage = self.voltage(DomainId::FrontEnd);
        let mut accessed_bpred = false;
        let mut accessed_icache = false;
        let mut accessed_rename = false;
        let mut accessed_rob = false;

        // ---- Commit ----
        let mut retired = 0;
        while retired < self.config.arch.retire_width
            && self.committed < self.config.max_instructions
        {
            let Some(entry) = self.rob.retire_head(now) else { break };
            accessed_rob = true;
            self.energy.record_access(Structure::Rob, 1, voltage);
            self.retire(entry, now, voltage);
            retired += 1;
            if self.committed % self.config.interval_instructions == 0 {
                self.end_interval(now);
            }
            if self.committed >= self.config.max_instructions {
                break;
            }
        }

        // ---- Fetch ----
        let can_fetch = now >= self.fetch_stalled_until
            && self.fetch_blocked_by.is_none()
            && !self.stream_done;
        if can_fetch {
            let mut fetched = 0;
            while fetched < self.config.arch.decode_width
                && self.fetch_buffer.len() < self.config.arch.fetch_buffer_size
            {
                let Some(inst) = stream.next_inst() else {
                    self.stream_done = true;
                    break;
                };
                accessed_icache = true;
                let icache_hit = self.l1i.access(inst.pc, false);
                self.energy.record_access(Structure::L1ICache, 1, voltage);
                if !icache_hit {
                    // Instruction fetch miss: probe the L2 and stall fetch for
                    // the refill latency (misses to memory are rare for the
                    // synthetic code footprints, which fit in the L2).
                    let l2_hit = self.l2.access(inst.pc, false);
                    self.energy
                        .record_access(Structure::L2Cache, 1, self.voltage(DomainId::LoadStore));
                    let period = self.clock(DomainId::FrontEnd).current_period_ps();
                    let l2_lat = u64::from(self.config.arch.l2.latency_cycles) * period;
                    let stall = if l2_hit {
                        l2_lat
                    } else {
                        self.memory_accesses += 1;
                        self.energy.record_memory_access();
                        l2_lat + self.config.clock.main_memory_latency_ps()
                    };
                    self.fetch_stalled_until = now + stall;
                }

                let mut fetched_inst = inst;
                if inst.op.is_branch() {
                    accessed_bpred = true;
                    self.energy.record_access(Structure::BranchPredictor, 1, voltage);
                    let pred = self.predictor.predict(inst.pc, inst.op);
                    // Record prediction; resolution happens at execute.
                    fetched_inst = inst;
                    self.fetch_buffer.push_back(fetched_inst);
                    // Stash the prediction by pre-creating the in-flight
                    // record at dispatch time; store it temporarily in a side
                    // map keyed by seq.
                    self.pending_predictions.insert(inst.seq, pred);
                    fetched += 1;
                    // Determine whether this prediction will turn out wrong;
                    // if so we cannot fetch past it (the front end would be
                    // fetching the wrong path).
                    let actual = inst.branch.expect("branch has branch info");
                    let wrong_direction = pred.taken != actual.taken;
                    let wrong_target = actual.taken && pred.target != Some(actual.target);
                    if wrong_direction || wrong_target {
                        self.fetch_blocked_by = Some(inst.seq);
                        break;
                    }
                    continue;
                }
                self.fetch_buffer.push_back(fetched_inst);
                fetched += 1;
                if !icache_hit {
                    // Miss: stop fetching this cycle.
                    break;
                }
            }
        }

        // ---- Rename / dispatch ----
        let mut dispatched = 0;
        while dispatched < self.config.arch.decode_width {
            let Some(&inst) = self.fetch_buffer.front() else { break };
            if self.rob.is_full() {
                break;
            }
            // Structural resources in the target domain.
            let target_domain = Self::exec_domain_of(inst.op);
            let queue_ok = match target_domain {
                DomainId::Integer => !self.int_iq.is_full(),
                DomainId::FloatingPoint => !self.fp_iq.is_full(),
                DomainId::LoadStore => !self.lsq.is_full(),
                _ => true,
            };
            if !queue_ok {
                break;
            }
            // Physical register for the destination.
            if let Some(dst) = inst.dst {
                if !dst.is_zero() && !self.rename_alloc.try_alloc(dst.class()) {
                    break;
                }
            }

            self.fetch_buffer.pop_front();
            accessed_rename = true;
            accessed_rob = true;
            self.energy.record_access(Structure::Rename, 1, voltage);
            self.energy.record_access(Structure::Rob, 1, voltage);

            // Rename: record producers, then claim the destination.
            let producers: Vec<SeqNum> = inst
                .sources()
                .filter_map(|r| self.rename_map.producer(r))
                .collect();
            if let Some(dst) = inst.dst {
                self.rename_map.set_producer(dst, inst.seq);
            }

            // Dispatch into the target domain's queue, paying the
            // synchronization crossing.
            let visible_at = self.cross_domain_visible(now, DomainId::FrontEnd, target_domain);
            let prediction = self.pending_predictions.remove(&inst.seq);
            let mut rob_entry = RobEntry::new(inst.seq, inst.op);

            match target_domain {
                DomainId::Integer if inst.op != OpClass::Nop => {
                    self.int_iq
                        .insert(inst.seq, visible_at)
                        .expect("checked not full");
                    self.energy
                        .record_access(Structure::IntIssueQueue, 1, self.voltage(DomainId::Integer));
                }
                DomainId::FloatingPoint => {
                    self.fp_iq
                        .insert(inst.seq, visible_at)
                        .expect("checked not full");
                    self.energy.record_access(
                        Structure::FpIssueQueue,
                        1,
                        self.voltage(DomainId::FloatingPoint),
                    );
                }
                DomainId::LoadStore => {
                    let mem = inst.mem.expect("memory op has address");
                    self.lsq
                        .insert(inst.seq, inst.is_store(), mem, visible_at)
                        .expect("checked not full");
                    self.energy
                        .record_access(Structure::Lsq, 1, self.voltage(DomainId::LoadStore));
                }
                _ => {}
            }

            // Determine misprediction state for branches.
            let mut mispredicted = false;
            if let (Some(pred), Some(actual)) = (prediction, inst.branch) {
                let wrong_direction = pred.taken != actual.taken;
                let wrong_target = actual.taken && pred.target != Some(actual.target);
                mispredicted = wrong_direction || wrong_target;
                if mispredicted {
                    rob_entry.mispredicted = true;
                }
            }

            let mut entry = InFlight {
                inst,
                producers,
                completed: false,
                visible_at: [0; 5],
                issued: false,
                prediction,
                mispredicted,
            };

            // NOPs complete instantly.
            if inst.op == OpClass::Nop {
                entry.completed = true;
                entry.visible_at = [now; 5];
                rob_entry.completed = true;
                rob_entry.completion_visible_ps = now;
            }

            self.rob.push(rob_entry).expect("checked not full");
            self.inflight.insert(inst.seq, entry);
            dispatched += 1;
        }

        // ---- Occupancy and gating ----
        self.domain_counters[DomainId::FrontEnd.index()].cycles += 1;
        if dispatched > 0 || retired > 0 {
            self.domain_counters[DomainId::FrontEnd.index()].busy_cycles += 1;
        }
        self.domain_counters[DomainId::FrontEnd.index()].issued += dispatched as u64;

        for (used, s) in [
            (accessed_bpred, Structure::BranchPredictor),
            (accessed_icache, Structure::L1ICache),
            (accessed_rename, Structure::Rename),
            (accessed_rob, Structure::Rob),
        ] {
            if !used {
                self.energy.record_idle_cycle(s, voltage);
            }
        }
        self.energy
            .record_clock_cycle(DomainId::FrontEnd, voltage, self.mcd_overhead());
        let fa = &mut self.freq_acc[DomainId::FrontEnd.index()];
        fa.weighted_sum += self.clocks[DomainId::FrontEnd.index()].current_freq_mhz();
        fa.cycles += 1;
    }

    fn retire(&mut self, entry: RobEntry, now: TimePs, fe_voltage: f64) {
        self.committed += 1;
        if self.first_commit_ps.is_none() {
            self.first_commit_ps = Some(now);
        }
        self.last_commit_ps = now;

        let inflight = self.inflight.remove(&entry.seq);
        if let Some(fl) = &inflight {
            // Free rename resources.
            if let Some(dst) = fl.inst.dst {
                if !dst.is_zero() {
                    self.rename_alloc.release(dst.class());
                    self.rename_map.clear_if_producer(dst, entry.seq);
                }
            }
            // Stores write the data cache at commit.
            if fl.inst.is_store() {
                if let Some(mem) = fl.inst.mem {
                    let ls_voltage = self.voltage(DomainId::LoadStore);
                    let hit = self.l1d.access(mem.addr, true);
                    self.energy.record_access(Structure::L1DCache, 1, ls_voltage);
                    if !hit {
                        let l2_hit = self.l2.access(mem.addr, true);
                        self.energy.record_access(Structure::L2Cache, 1, ls_voltage);
                        if !l2_hit {
                            self.memory_accesses += 1;
                            self.energy.record_memory_access();
                        }
                    }
                }
            }
            // Memory operations leave the LSQ at retire.
            if fl.inst.is_mem() {
                self.lsq.remove(entry.seq);
            }
        }
        let _ = fe_voltage;
    }

    // ----------------------------------------------------------------
    // Execution-domain cycles (integer / floating point).
    // ----------------------------------------------------------------

    fn exec_domain_cycle(&mut self, domain: DomainId, now: TimePs) {
        debug_assert!(matches!(domain, DomainId::Integer | DomainId::FloatingPoint));
        let voltage = self.voltage(domain);
        let period = self.clock(domain).current_period_ps();

        // ---- Writeback of finished executions ----
        self.drain_completions(domain, now);

        // ---- Wakeup / select / issue ----
        let issue_width = if domain == DomainId::Integer {
            self.config.arch.int_issue_width
        } else {
            self.config.arch.fp_issue_width
        };
        let candidates: Vec<SeqNum> = if domain == DomainId::Integer {
            self.int_iq.visible_entries(now).collect()
        } else {
            self.fp_iq.visible_entries(now).collect()
        };

        let mut issued = 0usize;
        for seq in candidates {
            if issued >= issue_width {
                break;
            }
            if !self.operands_ready(seq, domain, now) {
                continue;
            }
            let (op, latency_cycles) = {
                let fl = &self.inflight[&seq];
                (fl.inst.op, fl.inst.op.latency())
            };
            let fu_kind = FuKind::for_exec_class(op.exec_class()).unwrap_or(FuKind::IntAlu);
            // Completion and functional-unit occupancy are scheduled half a
            // period early so that per-edge jitter can never push the
            // completing edge past the nominal latency and charge a spurious
            // extra cycle.
            let margin = period / 2;
            let latency_ps = (u64::from(latency_cycles) * period).saturating_sub(margin);
            let busy_until = if op.pipelined() {
                now + period - margin
            } else {
                now + latency_ps
            };
            let fus = if domain == DomainId::Integer { &mut self.int_fus } else { &mut self.fp_fus };
            if !fus.try_issue(fu_kind, now, busy_until) {
                continue;
            }
            // Issue.
            if domain == DomainId::Integer {
                self.int_iq.remove(seq);
                self.energy.record_access(Structure::IntIssueQueue, 1, voltage);
                self.energy.record_access(Structure::IntRegFile, 2, voltage);
                self.energy.record_access(Structure::IntAlu, 1, voltage);
            } else {
                self.fp_iq.remove(seq);
                self.energy.record_access(Structure::FpIssueQueue, 1, voltage);
                self.energy.record_access(Structure::FpRegFile, 2, voltage);
                self.energy.record_access(Structure::FpAlu, 1, voltage);
            }
            if let Some(fl) = self.inflight.get_mut(&seq) {
                fl.issued = true;
            }
            self.pending_completions[domain.index()].push((now + latency_ps.max(1), seq));
            issued += 1;
        }

        // ---- Occupancy / counters / gating ----
        let counters = &mut self.domain_counters[domain.index()];
        counters.cycles += 1;
        if issued > 0 {
            counters.busy_cycles += 1;
        }
        counters.issued += issued as u64;

        if domain == DomainId::Integer {
            self.int_iq.accumulate_occupancy();
            if issued == 0 {
                self.energy.record_idle_cycle(Structure::IntIssueQueue, voltage);
                self.energy.record_idle_cycle(Structure::IntAlu, voltage);
                self.energy.record_idle_cycle(Structure::IntRegFile, voltage);
            }
        } else {
            self.fp_iq.accumulate_occupancy();
            if issued == 0 {
                self.energy.record_idle_cycle(Structure::FpIssueQueue, voltage);
                self.energy.record_idle_cycle(Structure::FpAlu, voltage);
                self.energy.record_idle_cycle(Structure::FpRegFile, voltage);
            }
        }
        self.energy.record_clock_cycle(domain, voltage, self.mcd_overhead());
        let fa = &mut self.freq_acc[domain.index()];
        fa.weighted_sum += self.clocks[domain.index()].current_freq_mhz();
        fa.cycles += 1;
    }

    // ----------------------------------------------------------------
    // Load/store-domain cycle.
    // ----------------------------------------------------------------

    fn loadstore_cycle(&mut self, now: TimePs) {
        let domain = DomainId::LoadStore;
        let voltage = self.voltage(domain);
        let period = self.clock(domain).current_period_ps();

        // ---- Writeback of finished memory operations ----
        self.drain_completions(domain, now);

        // ---- Address-readiness update ----
        let lsq_seqs: Vec<SeqNum> = self.lsq.iter().map(|e| e.seq).collect();
        for seq in lsq_seqs {
            let ready = {
                let Some(e) = self.lsq.get(seq) else { continue };
                if e.operands_ready {
                    continue;
                }
                self.operands_ready(seq, domain, now)
            };
            if ready {
                self.lsq.set_operands_ready(seq);
            }
        }

        // ---- Issue memory operations ----
        let candidates = self.lsq.issue_candidates(now);
        let mut issued = 0usize;
        for seq in candidates {
            if issued >= self.config.arch.mem_issue_width {
                break;
            }
            let Some(entry) = self.lsq.get(seq).copied() else { continue };
            // Half-period scheduling margin (see `exec_domain_cycle`).
            let margin = period / 2;
            let one_cycle = now + period - margin;
            let completion = if entry.is_store {
                // Stores complete (for the ROB) once their address and data
                // are known; the cache write happens at commit.
                Some(one_cycle)
            } else {
                match self.lsq.load_issue_decision(seq) {
                    LsqIssue::Blocked => None,
                    LsqIssue::Forward(_) => {
                        if self.mem_fus.try_issue(FuKind::MemPort, now, one_cycle) {
                            self.energy.record_access(Structure::Lsq, 1, voltage);
                            Some(one_cycle)
                        } else {
                            None
                        }
                    }
                    LsqIssue::AccessCache => {
                        if self.mem_fus.try_issue(FuKind::MemPort, now, one_cycle) {
                            self.energy.record_access(Structure::Lsq, 1, voltage);
                            Some(self.data_access_latency(entry.mem.addr, now, period, voltage))
                        } else {
                            None
                        }
                    }
                }
            };
            if let Some(done_at) = completion {
                self.lsq.mark_issued(seq);
                if let Some(fl) = self.inflight.get_mut(&seq) {
                    fl.issued = true;
                }
                self.pending_completions[domain.index()].push((done_at, seq));
                issued += 1;
            }
        }

        // ---- Occupancy / counters / gating ----
        let counters = &mut self.domain_counters[domain.index()];
        counters.cycles += 1;
        if issued > 0 {
            counters.busy_cycles += 1;
        }
        counters.issued += issued as u64;
        self.lsq.accumulate_occupancy();
        if issued == 0 {
            self.energy.record_idle_cycle(Structure::Lsq, voltage);
            self.energy.record_idle_cycle(Structure::L1DCache, voltage);
        }
        self.energy.record_clock_cycle(domain, voltage, self.mcd_overhead());
        let fa = &mut self.freq_acc[domain.index()];
        fa.weighted_sum += self.clocks[domain.index()].current_freq_mhz();
        fa.cycles += 1;
    }

    /// Computes the completion time of a load that accesses the cache
    /// hierarchy, charging the corresponding energies.
    fn data_access_latency(&mut self, addr: u64, now: TimePs, period: TimePs, voltage: f64) -> TimePs {
        // Half-period scheduling margin (see `exec_domain_cycle`).
        let margin = period / 2;
        let l1_hit = self.l1d.access(addr, false);
        self.energy.record_access(Structure::L1DCache, 1, voltage);
        let l1_lat = u64::from(self.config.arch.l1d.latency_cycles) * period;
        if l1_hit {
            return now + l1_lat - margin;
        }
        let l2_hit = self.l2.access(addr, false);
        self.energy.record_access(Structure::L2Cache, 1, voltage);
        let l2_lat = u64::from(self.config.arch.l2.latency_cycles) * period;
        if l2_hit {
            return now + l1_lat + l2_lat - margin;
        }
        // Miss to main memory: fixed access time plus a synchronization
        // crossing into and out of the external domain.
        self.memory_accesses += 1;
        self.energy.record_memory_access();
        let to_mem = self.cross_domain_visible(now + l1_lat + l2_lat, DomainId::LoadStore, DomainId::External);
        let mem_done = to_mem + self.config.clock.main_memory_latency_ps();
        let back = self.cross_domain_visible(mem_done, DomainId::External, DomainId::LoadStore);
        back + period - margin
    }

    /// Applies writeback for every pending completion of `domain` whose
    /// time has arrived.
    fn drain_completions(&mut self, domain: DomainId, now: TimePs) {
        let pending = &mut self.pending_completions[domain.index()];
        let mut done: Vec<(TimePs, SeqNum)> = Vec::new();
        pending.retain(|&(t, seq)| {
            if t <= now {
                done.push((t, seq));
                false
            } else {
                true
            }
        });
        done.sort_unstable();
        for (t, seq) in done {
            self.writeback(seq, t.max(now), domain);
        }
    }

    fn writeback(&mut self, seq: SeqNum, t: TimePs, domain: DomainId) {
        let visible = self.visibility_vector(t, domain);
        let (is_branch, mispredicted, pc, op, prediction, branch_info, is_load) = {
            let Some(fl) = self.inflight.get_mut(&seq) else { return };
            fl.completed = true;
            fl.visible_at = visible;
            (
                fl.inst.is_branch(),
                fl.mispredicted,
                fl.inst.pc,
                fl.inst.op,
                fl.prediction,
                fl.inst.branch,
                fl.inst.is_load(),
            )
        };
        // Completion report to the ROB (front-end domain).
        let fe_visible = visible[DomainId::FrontEnd.index()];
        self.rob.mark_completed(seq, fe_visible);
        self.energy.record_access(
            Structure::ResultBus,
            1,
            self.voltage(DomainId::FrontEnd),
        );
        if is_load {
            self.lsq.mark_completed(seq);
        }

        // Branch resolution: train the predictor and, on a misprediction,
        // restart fetch after the redirect penalty.
        if is_branch {
            if let (Some(pred), Some(actual)) = (prediction, branch_info) {
                self.predictor.update(pc, op, pred, actual.taken, actual.target);
            }
            if mispredicted {
                self.mispredict_redirects += 1;
                let fe_period = self.clock(DomainId::FrontEnd).current_period_ps();
                let resume =
                    fe_visible + u64::from(self.config.arch.mispredict_penalty) * fe_period;
                self.fetch_stalled_until = self.fetch_stalled_until.max(resume);
                if self.fetch_blocked_by == Some(seq) {
                    self.fetch_blocked_by = None;
                }
            }
        }
    }

    // ----------------------------------------------------------------
    // Control intervals.
    // ----------------------------------------------------------------

    fn end_interval(&mut self, now: TimePs) {
        let fe_cycles_total = self.clocks[DomainId::FrontEnd.index()].cycles();
        let frontend_cycles = fe_cycles_total - self.frontend_cycles_at_interval_start;
        self.frontend_cycles_at_interval_start = fe_cycles_total;
        let instructions = self.config.interval_instructions;
        let ipc = if frontend_cycles == 0 {
            0.0
        } else {
            instructions as f64 / frontend_cycles as f64
        };

        let mut domain_samples = Vec::with_capacity(3);
        for d in CONTROLLABLE_DOMAINS {
            let util = match d {
                DomainId::Integer => self.int_iq.take_average_occupancy(),
                DomainId::FloatingPoint => self.fp_iq.take_average_occupancy(),
                DomainId::LoadStore => self.lsq.take_average_occupancy(),
                _ => 0.0,
            };
            let counters = &mut self.domain_counters[d.index()];
            let cycles = counters.cycles - counters.cycles_at_interval_start;
            counters.cycles_at_interval_start = counters.cycles;
            let busy = counters.busy_cycles;
            let issued = counters.issued;
            counters.busy_cycles = 0;
            counters.issued = 0;
            domain_samples.push(DomainSample {
                domain: d,
                queue_utilization: util,
                domain_cycles: cycles,
                busy_cycles: busy,
                issued_instructions: issued,
                freq_mhz: self.clocks[d.index()].target_freq_mhz(),
            });
        }

        // Profile for the off-line oracle.
        self.profile.push_interval(domain_samples.clone());

        let sample = IntervalSample {
            interval: self.interval_index,
            instructions,
            frontend_cycles,
            ipc,
            domains: domain_samples.clone(),
        };
        let commands = self.controller.interval_update(&sample);
        for cmd in commands {
            if !cmd.domain.is_controllable() {
                continue;
            }
            let point = self.table.nearest(cmd.target_freq_mhz);
            self.clocks[cmd.domain.index()].set_target_freq(point.freq_mhz);
        }

        if self.config.record_traces {
            self.intervals.push(IntervalRecord {
                interval: self.interval_index,
                committed: self.committed,
                ipc,
                domains: domain_samples
                    .iter()
                    .map(|s| DomainTrace {
                        domain: s.domain,
                        queue_utilization: s.queue_utilization,
                        freq_mhz: self.clocks[s.domain.index()].target_freq_mhz(),
                    })
                    .collect(),
            });
        }
        self.interval_index += 1;
        let _ = now;
    }

    // ----------------------------------------------------------------
    // Main loop.
    // ----------------------------------------------------------------

    /// Runs the processor on an instruction stream until the configured
    /// instruction budget is committed or the stream is exhausted and the
    /// pipeline has drained.  Returns the run telemetry.
    ///
    /// # Panics
    ///
    /// Panics if the simulation makes no forward progress for an extended
    /// period (an internal invariant violation, not a legitimate outcome).
    pub fn run<S: InstructionStream>(&mut self, mut stream: S) -> SimResult {
        let start_ps = self.clocks.iter().map(|c| c.next_edge_ps()).min().unwrap_or(0);
        let mut last_commit_check = (0u64, start_ps);

        loop {
            if self.committed >= self.config.max_instructions {
                break;
            }
            if self.stream_done
                && self.fetch_buffer.is_empty()
                && self.rob.is_empty()
                && self.inflight.is_empty()
            {
                break;
            }

            // Pick the on-chip domain with the earliest pending edge.
            let domain = mcd_clock::ON_CHIP_DOMAINS
                .iter()
                .copied()
                .min_by_key(|d| self.clocks[d.index()].next_edge_ps())
                .expect("there are always four on-chip domains");
            let now = self.clocks[domain.index()].advance();

            match domain {
                DomainId::FrontEnd => self.frontend_cycle(now, &mut stream),
                DomainId::Integer | DomainId::FloatingPoint => self.exec_domain_cycle(domain, now),
                DomainId::LoadStore => self.loadstore_cycle(now),
                DomainId::External => {}
            }

            // Watchdog against livelock.
            if self.committed > last_commit_check.0 {
                last_commit_check = (self.committed, now);
            } else if now.saturating_sub(last_commit_check.1) > COMMIT_WATCHDOG_PS {
                panic!(
                    "simulator livelock: no commit for {} ps at instruction {}",
                    now - last_commit_check.1,
                    self.committed
                );
            }
        }

        self.finish(start_ps)
    }

    fn finish(&mut self, start_ps: TimePs) -> SimResult {
        self.controller.finish();
        let elapsed = self.last_commit_ps.saturating_sub(start_ps).max(1);
        let avg_domain_freq_mhz = CONTROLLABLE_DOMAINS
            .iter()
            .map(|&d| {
                let fa = &self.freq_acc[d.index()];
                let avg = if fa.cycles == 0 {
                    self.clocks[d.index()].current_freq_mhz()
                } else {
                    fa.weighted_sum / fa.cycles as f64
                };
                (d, avg as MegaHertz)
            })
            .collect();

        SimResult {
            committed_instructions: self.committed,
            frontend_cycles: self.clocks[DomainId::FrontEnd.index()].cycles(),
            elapsed_ps: elapsed,
            energy: self.energy.breakdown(),
            branch_stats: self.predictor.stats(),
            l1i_stats: self.l1i.stats(),
            l1d_stats: self.l1d.stats(),
            l2_stats: self.l2.stats(),
            memory_accesses: self.memory_accesses,
            mispredict_redirects: self.mispredict_redirects,
            intervals: std::mem::take(&mut self.intervals),
            profile: std::mem::take(&mut self.profile),
            avg_domain_freq_mhz,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_control::{AttackDecayController, AttackDecayParams, FixedController};
    use mcd_workloads::{Benchmark, WorkloadGenerator};

    fn run_benchmark(
        bench: Benchmark,
        insts: u64,
        config: SimConfig,
        controller: Box<dyn FrequencyController>,
    ) -> SimResult {
        let stream = WorkloadGenerator::new(&bench.spec(), 42, insts);
        let mut cpu = McdProcessor::new(config, controller);
        cpu.run(stream)
    }

    #[test]
    fn baseline_run_commits_all_instructions() {
        let r = run_benchmark(
            Benchmark::Adpcm,
            30_000,
            SimConfig::baseline_mcd(30_000),
            Box::new(FixedController::at_max()),
        );
        assert_eq!(r.committed_instructions, 30_000);
        assert!(r.cpi() > 0.2 && r.cpi() < 10.0, "cpi = {}", r.cpi());
        assert!(r.elapsed_ps > 0);
        assert!(r.chip_energy() > 0.0);
        assert!(r.branch_stats.direction_predictions > 0);
    }

    #[test]
    fn results_are_deterministic() {
        let a = run_benchmark(
            Benchmark::Gsm,
            20_000,
            SimConfig::baseline_mcd(20_000),
            Box::new(FixedController::at_max()),
        );
        let b = run_benchmark(
            Benchmark::Gsm,
            20_000,
            SimConfig::baseline_mcd(20_000),
            Box::new(FixedController::at_max()),
        );
        assert_eq!(a.committed_instructions, b.committed_instructions);
        assert_eq!(a.frontend_cycles, b.frontend_cycles);
        assert_eq!(a.elapsed_ps, b.elapsed_ps);
        assert!((a.chip_energy() - b.chip_energy()).abs() < 1e-9);
    }

    #[test]
    fn synchronous_processor_is_at_least_as_fast_as_mcd_baseline() {
        let sync = run_benchmark(
            Benchmark::Gzip,
            40_000,
            SimConfig::fully_synchronous(40_000),
            Box::new(FixedController::at_max()),
        );
        let mcd = run_benchmark(
            Benchmark::Gzip,
            40_000,
            SimConfig::baseline_mcd(40_000),
            Box::new(FixedController::at_max()),
        );
        // The MCD baseline pays synchronization penalties: slower, and with
        // extra clock energy.  The paper puts the inherent degradation below
        // a few percent.
        let degradation = mcd.elapsed_ps as f64 / sync.elapsed_ps as f64 - 1.0;
        assert!(
            degradation > -0.01,
            "MCD baseline should not be faster than the synchronous processor ({degradation})"
        );
        assert!(
            degradation < 0.10,
            "MCD inherent degradation should be small, got {degradation}"
        );
        assert!(mcd.chip_energy() > sync.chip_energy());
    }

    #[test]
    fn memory_bound_workload_misses_to_main_memory() {
        let r = run_benchmark(
            Benchmark::Mcf,
            30_000,
            SimConfig::baseline_mcd(30_000),
            Box::new(FixedController::at_max()),
        );
        assert!(r.memory_accesses > 50, "mcf should miss to memory, got {}", r.memory_accesses);
        assert!(r.l2_stats.misses > 50);
        // Memory-bound code has a much higher CPI than cache-resident code.
        let fast = run_benchmark(
            Benchmark::Adpcm,
            30_000,
            SimConfig::baseline_mcd(30_000),
            Box::new(FixedController::at_max()),
        );
        assert!(r.cpi() > fast.cpi());
    }

    #[test]
    fn fp_workload_exercises_the_fp_domain() {
        let fp = run_benchmark(
            Benchmark::Swim,
            30_000,
            SimConfig::baseline_mcd(30_000),
            Box::new(FixedController::at_max()),
        );
        let int = run_benchmark(
            Benchmark::Gzip,
            30_000,
            SimConfig::baseline_mcd(30_000),
            Box::new(FixedController::at_max()),
        );
        // Compare the FP ALU's *share* of chip energy so that differing run
        // lengths (and therefore differing idle-gating charges) cancel out.
        let fp_share = fp.energy.structure(Structure::FpAlu) / fp.chip_energy();
        let int_share = int.energy.structure(Structure::FpAlu) / int.chip_energy();
        assert!(
            fp_share > int_share,
            "swim's FP ALU share ({fp_share:.4}) must exceed gzip's ({int_share:.4})"
        );
    }

    #[test]
    fn pinning_a_domain_low_slows_execution_and_saves_domain_energy() {
        let base = run_benchmark(
            Benchmark::Gzip,
            30_000,
            SimConfig::baseline_mcd(30_000),
            Box::new(FixedController::at_max()),
        );
        let slowed = run_benchmark(
            Benchmark::Gzip,
            30_000,
            SimConfig::baseline_mcd(30_000),
            Box::new(FixedController::pinned(vec![(DomainId::Integer, 250.0)])),
        );
        assert!(slowed.elapsed_ps > base.elapsed_ps, "slowing the integer domain must cost time");
        assert!(
            slowed.energy.domain(DomainId::Integer) < base.energy.domain(DomainId::Integer),
            "integer-domain energy must fall at 250 MHz / 0.65 V"
        );
    }

    #[test]
    fn attack_decay_controller_changes_domain_frequencies() {
        let mut cfg = SimConfig::baseline_mcd(120_000);
        cfg.record_traces = true;
        let table = OperatingPointTable::from_params(&cfg.clock);
        let ctrl = AttackDecayController::new(AttackDecayParams::paper_defaults(), &table);
        let r = run_benchmark(Benchmark::Gzip, 120_000, cfg, Box::new(ctrl));
        assert_eq!(r.committed_instructions, 120_000);
        assert!(!r.intervals.is_empty());
        // The FP domain is unused by gzip: the controller must have decayed
        // its frequency below the maximum by the end of the run.
        let last = r.intervals.last().unwrap();
        let fp_last = last.domain(DomainId::FloatingPoint).unwrap().freq_mhz;
        assert!(fp_last < 995.0, "unused FP domain should have decayed, final target = {fp_last}");
        let fp_avg = r.avg_freq(DomainId::FloatingPoint).unwrap();
        assert!(fp_avg < 1000.0, "average must reflect the decay, avg = {fp_avg}");
    }

    #[test]
    fn profile_is_recorded_for_offline_oracle() {
        let r = run_benchmark(
            Benchmark::Epic,
            40_000,
            SimConfig::baseline_mcd(40_000),
            Box::new(FixedController::at_max()),
        );
        assert_eq!(r.profile.len() as u64, 40_000 / 10_000);
    }

    #[test]
    fn short_stream_drains_cleanly() {
        // Stream shorter than the instruction budget: the pipeline drains
        // and the run ends without hitting the watchdog.
        let stream = WorkloadGenerator::new(&Benchmark::Adpcm.spec(), 3, 5_000);
        let mut cpu = McdProcessor::new(SimConfig::baseline_mcd(1_000_000), Box::new(FixedController::at_max()));
        let r = cpu.run(stream);
        assert_eq!(r.committed_instructions, 5_000);
    }

    #[test]
    #[should_panic(expected = "invalid simulator configuration")]
    fn invalid_config_panics() {
        let mut cfg = SimConfig::baseline_mcd(0);
        cfg.max_instructions = 0;
        let _ = McdProcessor::new(cfg, Box::new(FixedController::at_max()));
    }
}
