//! Simulator configuration: architectural parameters (paper Table 4) and
//! the clocking mode.

use mcd_clock::McdClockParams;
use mcd_microarch::{BranchPredictorConfig, CacheConfig};
use mcd_power::EnergyParams;
use serde::{Deserialize, Serialize};

/// Whether the chip is clocked as an MCD design or fully synchronously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClockingMode {
    /// Four independent domain clocks with jitter, synchronization windows
    /// and the MCD clock-energy overhead.
    Mcd,
    /// A single global clock: no jitter penalty, no synchronization
    /// windows, no extra clock energy.  Used for the conventional-processor
    /// baseline and the global-scaling comparison.
    FullySynchronous,
}

/// Architectural parameters of the simulated core (paper Table 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchParams {
    /// Instructions decoded/renamed/dispatched per front-end cycle (4).
    pub decode_width: usize,
    /// Integer-domain issue width per cycle (4 ALUs).
    pub int_issue_width: usize,
    /// Floating-point-domain issue width per cycle (2 ALUs).
    pub fp_issue_width: usize,
    /// Load/store-domain issue width per cycle (2 cache ports).
    pub mem_issue_width: usize,
    /// Instructions retired per front-end cycle (11).
    pub retire_width: usize,
    /// Reorder-buffer entries (80).
    pub rob_size: usize,
    /// Integer issue-queue entries (20).
    pub int_iq_size: usize,
    /// Floating-point issue-queue entries (15).
    pub fp_iq_size: usize,
    /// Load/store-queue entries (64).
    pub lsq_size: usize,
    /// Integer physical registers (72).
    pub int_phys_regs: usize,
    /// Floating-point physical registers (72).
    pub fp_phys_regs: usize,
    /// Branch mispredict penalty in front-end cycles (7).
    pub mispredict_penalty: u32,
    /// Branch predictor configuration.
    pub branch_predictor: BranchPredictorConfig,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2 cache.
    pub l2: CacheConfig,
    /// Size of the fetch buffer between fetch and rename.
    pub fetch_buffer_size: usize,
}

impl Default for ArchParams {
    fn default() -> Self {
        ArchParams {
            decode_width: 4,
            int_issue_width: 4,
            fp_issue_width: 2,
            mem_issue_width: 2,
            retire_width: 11,
            rob_size: 80,
            int_iq_size: 20,
            fp_iq_size: 15,
            lsq_size: 64,
            int_phys_regs: 72,
            fp_phys_regs: 72,
            mispredict_penalty: 7,
            branch_predictor: BranchPredictorConfig::default(),
            l1i: CacheConfig::l1_64k_2way(),
            l1d: CacheConfig::l1_64k_2way(),
            l2: CacheConfig::l2_1m_direct(),
            fetch_buffer_size: 16,
        }
    }
}

impl ArchParams {
    /// Validates that the parameters are internally consistent.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        let positive = [
            ("decode_width", self.decode_width),
            ("int_issue_width", self.int_issue_width),
            ("fp_issue_width", self.fp_issue_width),
            ("mem_issue_width", self.mem_issue_width),
            ("retire_width", self.retire_width),
            ("rob_size", self.rob_size),
            ("int_iq_size", self.int_iq_size),
            ("fp_iq_size", self.fp_iq_size),
            ("lsq_size", self.lsq_size),
            ("fetch_buffer_size", self.fetch_buffer_size),
        ];
        for (name, v) in positive {
            if v == 0 {
                return Err(format!("{name} must be positive"));
            }
        }
        if self.int_phys_regs <= 32 || self.fp_phys_regs <= 32 {
            return Err("physical register files must exceed 32 architectural registers".into());
        }
        self.l1i.validate()?;
        self.l1d.validate()?;
        self.l2.validate()?;
        Ok(())
    }
}

/// Complete simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Architectural parameters (Table 4).
    pub arch: ArchParams,
    /// Clock/DVFS parameters (Table 1).
    pub clock: McdClockParams,
    /// Energy-model parameters.
    pub energy: EnergyParams,
    /// MCD or fully synchronous clocking.
    pub clocking: ClockingMode,
    /// Committed instructions per control interval (10 000).
    pub interval_instructions: u64,
    /// Stop after committing this many instructions.
    pub max_instructions: u64,
    /// Seed for clock phases, jitter and any stochastic tie-breaks.
    pub seed: u64,
    /// Record per-interval frequency/utilization traces (needed for the
    /// Figure 2/3 reproductions; adds memory proportional to run length).
    pub record_traces: bool,
}

impl SimConfig {
    /// The baseline MCD configuration of the paper: all domains at maximum
    /// frequency, MCD clocking (jitter, synchronization windows, clock
    /// energy overhead).
    pub fn baseline_mcd(max_instructions: u64) -> Self {
        SimConfig {
            arch: ArchParams::default(),
            clock: McdClockParams::default(),
            energy: EnergyParams::default(),
            clocking: ClockingMode::Mcd,
            interval_instructions: 10_000,
            max_instructions,
            seed: 0xC0FFEE,
            record_traces: false,
        }
    }

    /// The conventional fully synchronous processor: a single 1 GHz / 1.2 V
    /// clock, no synchronization penalties, no MCD clock-energy overhead.
    pub fn fully_synchronous(max_instructions: u64) -> Self {
        let mut cfg = SimConfig::baseline_mcd(max_instructions);
        cfg.clocking = ClockingMode::FullySynchronous;
        cfg.clock = cfg.clock.fully_synchronous();
        cfg
    }

    /// Validates all nested parameter sets.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        self.arch.validate()?;
        self.clock.validate()?;
        self.energy.validate()?;
        if self.interval_instructions == 0 {
            return Err("interval length must be positive".into());
        }
        if self.max_instructions == 0 {
            return Err("instruction budget must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_arch_matches_table4() {
        let a = ArchParams::default();
        assert_eq!(a.decode_width, 4);
        assert_eq!(a.retire_width, 11);
        assert_eq!(a.rob_size, 80);
        assert_eq!(a.int_iq_size, 20);
        assert_eq!(a.fp_iq_size, 15);
        assert_eq!(a.lsq_size, 64);
        assert_eq!(a.int_phys_regs, 72);
        assert_eq!(a.fp_phys_regs, 72);
        assert_eq!(a.mispredict_penalty, 7);
        assert_eq!(
            a.int_issue_width + a.fp_issue_width,
            6,
            "issue width 6 (4 int + 2 fp)"
        );
        a.validate().unwrap();
    }

    #[test]
    fn preset_configs_validate() {
        SimConfig::baseline_mcd(100_000).validate().unwrap();
        SimConfig::fully_synchronous(100_000).validate().unwrap();
    }

    #[test]
    fn fully_synchronous_preset_strips_mcd_penalties() {
        let cfg = SimConfig::fully_synchronous(1_000);
        assert_eq!(cfg.clocking, ClockingMode::FullySynchronous);
        assert_eq!(cfg.clock.sync_window_ps, 0);
        assert_eq!(cfg.clock.jitter_sigma_ps, 0.0);
        assert_eq!(cfg.clock.mcd_clock_energy_overhead, 0.0);
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut cfg = SimConfig::baseline_mcd(1_000);
        cfg.interval_instructions = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::baseline_mcd(1_000);
        cfg.max_instructions = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::baseline_mcd(1_000);
        cfg.arch.rob_size = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::baseline_mcd(1_000);
        cfg.arch.int_phys_regs = 16;
        assert!(cfg.validate().is_err());
    }
}
