//! Event queues of the simulation kernel.
//!
//! Completion events ("instruction `seq` finishes executing at time `t` in
//! domain `d`") used to live in per-domain `Vec`s that every domain cycle
//! re-scanned with `retain` and re-sorted.  [`CompletionQueues`] replaces
//! them with per-domain binary min-heaps keyed on `(completion time, seq)`:
//! each cycle pops only the events that are actually due, in exactly the
//! deterministic `(time, seq)` order the old sort produced, at `O(log n)`
//! per event instead of `O(n)` per cycle.
//!
//! [`WakeupQueues`] plays the same role for *readiness* events: when an
//! instruction's last outstanding producer completes (see
//! `inflight::InFlightTable::complete`), the exact future time at which it
//! becomes issueable in its execution domain is known, so it is queued as
//! a `(ready time, seq)` event instead of being re-probed every cycle.
//! Each domain cycle promotes the events that have come due into a
//! seq-sorted *ready list* — the select stage then walks only genuinely
//! issueable instructions, oldest first, exactly the set and order the
//! historical visible-partition-plus-probe scan produced.  Entries leave
//! the ready list only at issue; a candidate that loses functional-unit
//! arbitration simply stays for the next cycle.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mcd_clock::{DomainId, TimePs};
use mcd_isa::SeqNum;

/// Per-domain min-heaps of pending completion events.
#[derive(Debug, Default)]
pub(crate) struct CompletionQueues {
    heaps: [BinaryHeap<Reverse<(TimePs, SeqNum)>>; 5],
}

impl CompletionQueues {
    /// Creates empty queues for all five domains.
    pub(crate) fn new() -> Self {
        CompletionQueues::default()
    }

    /// Schedules the completion of `seq` at `time` in `domain`.
    #[inline]
    pub(crate) fn push(&mut self, domain: DomainId, time: TimePs, seq: SeqNum) {
        self.heaps[domain.index()].push(Reverse((time, seq)));
    }

    /// Pops the earliest completion of `domain` that is due at `now`, if
    /// any.  Events with equal times pop in sequence-number order, keeping
    /// writeback deterministic.
    #[inline]
    pub(crate) fn pop_due(&mut self, domain: DomainId, now: TimePs) -> Option<(TimePs, SeqNum)> {
        let heap = &mut self.heaps[domain.index()];
        match heap.peek() {
            Some(&Reverse((t, _))) if t <= now => {
                let Reverse(event) = heap.pop().expect("peeked event exists");
                Some(event)
            }
            _ => None,
        }
    }
}

/// Per-domain wakeup-event min-heaps plus the seq-sorted ready lists they
/// feed.  An instruction is pushed when its readiness time becomes known
/// and may be pushed *again* at an earlier time if one of its producers
/// retires first (architectural state needs no visibility crossing);
/// promotion deduplicates, and a caller-supplied filter drops events for
/// instructions that already issued.
#[derive(Debug, Default)]
pub(crate) struct WakeupQueues {
    /// Pending `(ready time, seq)` wakeup events per domain.
    heaps: [BinaryHeap<Reverse<(TimePs, SeqNum)>>; 5],
    /// Issueable-but-not-yet-issued instructions per domain, sorted by
    /// sequence number (issue priority is oldest first).
    ready: [Vec<SeqNum>; 5],
}

impl WakeupQueues {
    /// Creates empty queues for all five domains.
    pub(crate) fn new() -> Self {
        WakeupQueues::default()
    }

    /// Schedules instruction `seq` to become issueable in `domain` at
    /// `time`.
    #[inline]
    pub(crate) fn push(&mut self, domain: DomainId, time: TimePs, seq: SeqNum) {
        self.heaps[domain.index()].push(Reverse((time, seq)));
    }

    /// Moves every wakeup event of `domain` due at `now` into the ready
    /// list.  A no-op (one heap peek) when nothing has come due.
    ///
    /// `still_waiting` filters out stale events: an instruction re-woken
    /// at an earlier time by a producer's retirement leaves its original
    /// event in the heap, which must be dropped once the instruction has
    /// issued.  Duplicates of instructions already in the ready list are
    /// skipped by the sorted insertion itself.
    #[inline]
    pub(crate) fn promote_due(
        &mut self,
        domain: DomainId,
        now: TimePs,
        mut still_waiting: impl FnMut(SeqNum) -> bool,
    ) {
        let heap = &mut self.heaps[domain.index()];
        let ready = &mut self.ready[domain.index()];
        while let Some(&Reverse((t, seq))) = heap.peek() {
            if t > now {
                break;
            }
            heap.pop();
            if !still_waiting(seq) {
                continue;
            }
            // Wakeups fire in time order but seqs are arbitrary; keep the
            // ready list seq-sorted so issue walks it oldest first.  The
            // common case appends.
            match ready.last() {
                Some(&last) if last >= seq => {
                    let pos = ready.partition_point(|&s| s < seq);
                    if ready.get(pos) != Some(&seq) {
                        ready.insert(pos, seq);
                    }
                }
                _ => ready.push(seq),
            }
        }
    }

    /// The instructions of `domain` that are issueable at the last
    /// [`WakeupQueues::promote_due`] time, oldest first.
    #[inline]
    pub(crate) fn ready(&self, domain: DomainId) -> &[SeqNum] {
        &self.ready[domain.index()]
    }

    /// Removes an instruction from `domain`'s ready list at issue.
    #[inline]
    pub(crate) fn remove_ready(&mut self, domain: DomainId, seq: SeqNum) {
        let ready = &mut self.ready[domain.index()];
        if let Ok(pos) = ready.binary_search(&seq) {
            ready.remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order_and_respects_due_time() {
        let mut q = CompletionQueues::new();
        let d = DomainId::Integer;
        q.push(d, 300, 7);
        q.push(d, 100, 9);
        q.push(d, 100, 2);
        q.push(d, 500, 1);
        assert_eq!(q.pop_due(d, 50), None);
        assert_eq!(q.pop_due(d, 300), Some((100, 2)));
        assert_eq!(q.pop_due(d, 300), Some((100, 9)));
        assert_eq!(q.pop_due(d, 300), Some((300, 7)));
        assert_eq!(q.pop_due(d, 300), None);
        assert_eq!(q.pop_due(d, 1_000), Some((500, 1)));
    }

    #[test]
    fn domains_are_independent() {
        let mut q = CompletionQueues::new();
        q.push(DomainId::Integer, 10, 1);
        q.push(DomainId::LoadStore, 10, 2);
        assert_eq!(q.pop_due(DomainId::FloatingPoint, 100), None);
        assert_eq!(q.pop_due(DomainId::Integer, 100), Some((10, 1)));
        assert_eq!(q.pop_due(DomainId::Integer, 100), None);
        assert_eq!(q.pop_due(DomainId::LoadStore, 100), Some((10, 2)));
    }

    #[test]
    fn wakeups_promote_due_events_into_a_seq_sorted_ready_list() {
        let mut w = WakeupQueues::new();
        let d = DomainId::Integer;
        w.push(d, 100, 9);
        w.push(d, 300, 2);
        w.push(d, 200, 5);
        w.promote_due(d, 50, |_| true);
        assert!(w.ready(d).is_empty());
        w.promote_due(d, 250, |_| true);
        // 9 woke before 5 in time, but the list is seq-sorted.
        assert_eq!(w.ready(d), &[5, 9]);
        w.promote_due(d, 300, |_| true);
        assert_eq!(w.ready(d), &[2, 5, 9]);
        // Issue removes; losing arbitration (no call) keeps the entry.
        w.remove_ready(d, 5);
        assert_eq!(w.ready(d), &[2, 9]);
        w.remove_ready(d, 5); // idempotent on absent seqs
        assert_eq!(w.ready(d), &[2, 9]);
    }

    #[test]
    fn duplicate_and_stale_wakeups_are_dropped() {
        let mut w = WakeupQueues::new();
        let d = DomainId::Integer;
        // A producer retirement re-wakes seq 7 earlier than its original
        // event; both events are in the heap.
        w.push(d, 500, 7);
        w.push(d, 100, 7);
        w.promote_due(d, 200, |_| true);
        assert_eq!(w.ready(d), &[7]);
        // The later duplicate must not re-insert it...
        w.promote_due(d, 500, |_| true);
        assert_eq!(w.ready(d), &[7]);
        // ...and once issued, stale events are filtered out entirely.
        w.push(d, 600, 7);
        w.remove_ready(d, 7);
        w.promote_due(d, 600, |_| false);
        assert!(w.ready(d).is_empty());
    }

    #[test]
    fn wakeup_domains_are_independent() {
        let mut w = WakeupQueues::new();
        w.push(DomainId::Integer, 10, 1);
        w.push(DomainId::FloatingPoint, 10, 2);
        w.promote_due(DomainId::Integer, 100, |_| true);
        assert_eq!(w.ready(DomainId::Integer), &[1]);
        assert!(w.ready(DomainId::FloatingPoint).is_empty());
        w.promote_due(DomainId::FloatingPoint, 100, |_| true);
        assert_eq!(w.ready(DomainId::FloatingPoint), &[2]);
    }
}
