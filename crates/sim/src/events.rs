//! Per-domain event timelines of the simulation kernel.
//!
//! Historically the kernel kept **two** parallel families of per-domain
//! binary min-heaps: `CompletionQueues` ("instruction `seq` finishes
//! executing at time `t` in domain `d`") and `WakeupQueues` ("instruction
//! `seq` becomes issueable in domain `d` at time `t`").  Every issue pushed
//! a completion event and every completion could push wakeup events, so the
//! per-instruction kernel cost was dominated by `O(log n)` heap churn paid
//! twice over.
//!
//! [`DomainTimeline`] replaces both with a single per-domain
//! **calendar/bucket queue** carrying tagged [`TimelineEvent`]s.  The MCD
//! regime makes the calendar layout a natural fit: every domain advances in
//! its own near-periodic cycles, and event latencies are small multiples of
//! the domain period (ALU/FP latencies of 1–20 cycles, memory misses of
//! ~100), so almost every event lands a bounded number of cycles in the
//! future.
//!
//! # Bucket layout
//!
//! Each domain owns a ring of `BUCKETS` buckets over absolute simulated
//! time quantized by a per-domain *granule*: bucket `(t / granule) %
//! BUCKETS` holds the events due in that granule-wide time slice.  The
//! granule is the domain's **settled clock period**
//! ([`mcd_clock::DomainClock::target_period_ps`]), so in steady state one
//! domain cycle advances the drain cursor by exactly one bucket, pushes are
//! `O(1)` (one division, one `Vec::push`), and the ring horizon of
//! `BUCKETS` cycles comfortably covers the deepest scheduling latency (an
//! L2 miss to main memory, on the order of 100 max-frequency cycles).
//!
//! Events beyond the ring horizon — e.g. scheduled across a frequency ramp
//! while the granule still reflects a much shorter period — spill to a
//! per-domain **overflow list** kept sorted (descending, so the earliest
//! event pops from the back in `O(1)`).  Spills are rare and counted
//! ([`EventTrafficStats::overflow_spills`]), so an overflow pathology on a
//! new workload is visible in the bench artefacts rather than silent.
//!
//! When the controller retargets a domain's frequency the granule changes
//! and the domain's pending events are re-indexed under the new mapping
//! ([`DomainTimeline::set_granule`]) — an `O(live events)` operation paid
//! once per control-interval command, which keeps the time-to-bucket
//! conversion consistent between push and drain across every ramp.
//!
//! # Monotone lane
//!
//! Event-traffic profiling (`EventTrafficStats`, surfaced per run as
//! `events_per_commit`) showed most pushes arrive in *non-decreasing*
//! `(time, seq, kind)` order: a domain schedules completions as it issues,
//! and issue times advance with domain time.  Each timeline therefore
//! carries a **monotone lane** — a sorted `VecDeque` that accepts a pushed
//! event with a single tail comparison whenever the event is not earlier
//! than the lane's tail, bypassing the bucket ring (no division, no bucket
//! push, no occupancy-bitmap update) and every granule re-file (the lane
//! holds absolute times and needs no bucket math, so
//! [`DomainTimeline::set_granule`] skips it entirely).  Out-of-order
//! pushes fall through to the ring/overflow calendar as before.  The drain
//! pops the lane's due prefix and merges it with the calendar batch in the
//! single existing sort, so the drain-order invariant below is untouched.
//! Lane absorption is counted ([`EventTrafficStats::lane_pushes`]).
//!
//! # Drain-order invariant
//!
//! One [`DomainTimeline::collect_due`] call per domain cycle drains *both*
//! event streams in a single pass, returning every due event in
//! `(time, seq, kind)` order with [`EventKind::Completion`] ordered before
//! [`EventKind::Wakeup`].  Completions thereby retire in exactly the
//! deterministic `(time, seq)` order the historical completion heap popped,
//! which the writeback side effects (predictor updates, ROB completion
//! marks, energy accounting) require for bit-identical results; wakeup
//! events commute with completions (promotion only inserts into a
//! seq-sorted ready list behind a pure filter), so tagging them after
//! completions at equal `(time, seq)` preserves behaviour exactly.
//!
//! In debug builds every timeline also maintains a **shadow reference
//! heap** — a plain `BinaryHeap` over the same tagged events — and
//! `collect_due` asserts that the calendar drain reproduces the heap's pop
//! sequence event for event.  Every debug-build test run (including the
//! golden-dump matrix and the slice proptests) therefore cross-checks the
//! calendar implementation against the reference ordering; release builds
//! compile the shadow out entirely.
//!
//! # Ready lists
//!
//! The per-domain *ready list* (issueable-but-not-yet-issued instructions,
//! kept seq-sorted because issue priority is oldest-first) lives in the
//! timeline too.  Due wakeups are folded in per drain through
//! [`DomainTimeline::extend_ready`], which sorts the batch once and merges
//! it in a single pass — fixing the historical per-event
//! `Vec::insert` whose worst case (events arriving in descending sequence
//! order) degraded to `O(k·n)` memmoves per cycle.  An append fast path
//! keeps the common in-order case allocation- and shift-free.
//!
//! # Pause/resume
//!
//! The timeline is plain owned state inside `McdProcessor`, so `run_for`
//! slice boundaries are invisible to it: cursor positions, ring contents,
//! overflow lists and ready lists all survive a pause untouched (re-verified
//! by the slice proptest and the `MCD_GOLDEN_SLICE` golden diffs).

use mcd_clock::{DomainId, TimePs};
use mcd_isa::SeqNum;
use serde::codec::{ByteReader, ByteWriter, Result as CodecResult};

use crate::telemetry::EventTrafficStats;

/// Number of ring buckets per domain.  The horizon must cover the deepest
/// in-ring scheduling latency in domain cycles: the longest functional-unit
/// latency is 20 cycles (integer divide) and an L2 miss to main memory
/// completes on the order of 100 max-frequency cycles, so 128 buckets keep
/// even memory-bound workloads out of the overflow list at every operating
/// point.  The occupancy bitmap packs one bit per bucket into `[u64; 2]`
/// and locates buckets with a 128-bit rotate, so this constant must equal
/// exactly 128 (asserted below); widening the ring means widening the
/// bitmap machinery with it.
const BUCKETS: usize = 128;
const _: () = assert!(BUCKETS == 2 * u64::BITS as usize, "bitmap is [u64; 2]");

/// What a timeline event means to the kernel.
///
/// The discriminant order matters: events sort `(time, seq, kind)` and
/// completions must drain before wakeups at equal `(time, seq)` so the
/// historical "writeback first, then promote" cycle structure is preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// Instruction `seq` finishes executing at `time`; drives writeback.
    Completion,
    /// Instruction `seq` becomes issueable at `time`; feeds the ready list.
    Wakeup,
}

/// One scheduled event of a domain timeline.
///
/// The derived ordering is the drain order: `(time, seq, kind)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TimelineEvent {
    /// Absolute simulated time at which the event is due, in picoseconds.
    pub time: TimePs,
    /// The instruction the event concerns.
    pub seq: SeqNum,
    /// Completion or wakeup.
    pub kind: EventKind,
}

impl TimelineEvent {
    /// Serializes the event for checkpointing.
    pub fn save(&self, w: &mut ByteWriter) {
        w.put_u64(self.time);
        w.put_u64(self.seq);
        w.put_u8(match self.kind {
            EventKind::Completion => 0,
            EventKind::Wakeup => 1,
        });
    }

    /// Rebuilds an event from [`TimelineEvent::save`] output.
    ///
    /// # Errors
    ///
    /// Returns a decode error on truncation or an unknown kind tag.
    pub fn load(r: &mut ByteReader<'_>) -> CodecResult<Self> {
        let time = r.u64()?;
        let seq = r.u64()?;
        let kind = match r.u8()? {
            0 => EventKind::Completion,
            1 => EventKind::Wakeup,
            got => {
                return Err(serde::codec::CodecError::BadTag {
                    what: "timeline event kind",
                    got: u64::from(got),
                })
            }
        };
        Ok(TimelineEvent { time, seq, kind })
    }
}

/// The seq-sorted ready list of one domain: issueable-but-not-yet-issued
/// instructions, oldest (lowest sequence number) first.
///
/// Entries leave only at issue; a candidate that loses functional-unit
/// arbitration stays for the next cycle.  Insertion happens in per-drain
/// batches: the batch is sorted once and merged in one pass, so the
/// reverse-seq-arrival worst case costs `O(n + k log k)` instead of the
/// `O(k·n)` of the historical per-event sorted `Vec::insert`.
#[derive(Debug, Default)]
struct ReadyList {
    /// Strictly ascending sequence numbers.
    seqs: Vec<SeqNum>,
    /// Reusable merge buffer (kept so steady state never allocates).
    merge: Vec<SeqNum>,
}

impl ReadyList {
    /// Folds a batch of woken sequence numbers into the list, deduplicating
    /// against both the batch itself and the existing entries.  The batch
    /// vector is consumed (cleared) and its capacity retained by the caller.
    fn extend_sorted(&mut self, batch: &mut Vec<SeqNum>) {
        if batch.is_empty() {
            return;
        }
        batch.sort_unstable();
        batch.dedup();
        // Append fast path: wakeups usually arrive in ascending seq order,
        // so the whole batch lands strictly after the existing entries.
        if self.seqs.last().is_none_or(|&last| last < batch[0]) {
            self.seqs.extend_from_slice(batch);
            batch.clear();
            return;
        }
        // General case: one merge pass over both sorted sequences.
        self.merge.clear();
        self.merge.reserve(self.seqs.len() + batch.len());
        let (mut i, mut j) = (0, 0);
        while i < self.seqs.len() && j < batch.len() {
            match self.seqs[i].cmp(&batch[j]) {
                std::cmp::Ordering::Less => {
                    self.merge.push(self.seqs[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    self.merge.push(batch[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    self.merge.push(self.seqs[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        self.merge.extend_from_slice(&self.seqs[i..]);
        self.merge.extend_from_slice(&batch[j..]);
        std::mem::swap(&mut self.seqs, &mut self.merge);
        batch.clear();
    }

    /// Removes `seq` (at issue); a no-op if it is not present.
    fn remove(&mut self, seq: SeqNum) {
        if let Ok(pos) = self.seqs.binary_search(&seq) {
            self.seqs.remove(pos);
        }
    }
}

/// The calendar queue of one domain.
#[derive(Debug)]
struct Timeline {
    /// Time quantum of one bucket (the domain's settled clock period).
    granule_ps: TimePs,
    /// Granule index of the ring window's base: every live ring event has
    /// a granule index in `[cursor, cursor + BUCKETS)` and no occupied
    /// bucket lies behind the cursor.  The cursor lags `now` while nothing
    /// is due (the fast path never touches it) and catches up in one jump
    /// on the next real drain.
    cursor: u64,
    /// The `now` of the most recent slow drain (anchors re-indexing).
    last_drained_ps: TimePs,
    /// Occupancy bitmap of the ring, one bit per bucket position
    /// (`BUCKETS` = 128 = two words): lets the drain jump straight to the
    /// first occupied bucket at or after the cursor instead of walking
    /// empty granules.
    occupied: [u64; 2],
    /// The bucket ring, indexed by `(t / granule) % BUCKETS`.
    buckets: Vec<Vec<TimelineEvent>>,
    /// Events beyond the ring horizon, sorted descending so the earliest
    /// pops from the back.
    overflow: Vec<TimelineEvent>,
    /// The monotone lane: events that arrived in non-decreasing
    /// `(time, seq, kind)` order, kept sorted by construction (an event
    /// only enters when it is `>=` the current tail).  The due prefix pops
    /// from the front at drain time.
    lane: std::collections::VecDeque<TimelineEvent>,
    /// Issueable instructions, seq-sorted.
    ready: ReadyList,
    /// Reference implementation: a plain min-heap over the same events.
    /// The drain asserts the calendar reproduces its pop order exactly.
    #[cfg(debug_assertions)]
    shadow: std::collections::BinaryHeap<std::cmp::Reverse<TimelineEvent>>,
}

impl Timeline {
    fn new(granule_ps: TimePs) -> Self {
        assert!(granule_ps > 0, "timeline granule must be positive");
        Timeline {
            granule_ps,
            cursor: 0,
            last_drained_ps: 0,
            occupied: [0; 2],
            buckets: vec![Vec::new(); BUCKETS],
            overflow: Vec::new(),
            lane: std::collections::VecDeque::new(),
            ready: ReadyList::default(),
            #[cfg(debug_assertions)]
            shadow: std::collections::BinaryHeap::new(),
        }
    }

    /// Ring offset (in buckets, from the cursor) of the first occupied
    /// bucket, or `None` when the ring is empty.
    #[inline]
    fn first_occupied_offset(&self) -> Option<u32> {
        let bits = (self.occupied[0] as u128) | ((self.occupied[1] as u128) << 64);
        if bits == 0 {
            return None;
        }
        Some(
            bits.rotate_right((self.cursor % BUCKETS as u64) as u32)
                .trailing_zeros(),
        )
    }

    /// Files an event into its ring bucket or the overflow list.  Returns
    /// `true` when the event spilled to overflow.
    fn place(&mut self, ev: TimelineEvent) -> bool {
        let idx = ev.time / self.granule_ps;
        // Kernel pushes always target the present or future of the domain
        // (see the module docs); re-indexing preserves this because only
        // undrained events are re-filed.  Clamp anyway so a violation would
        // at worst deliver late in release builds instead of never.
        debug_assert!(
            idx >= self.cursor,
            "event at {} ps scheduled before the drain cursor",
            ev.time
        );
        let idx = idx.max(self.cursor);
        if idx >= self.cursor + BUCKETS as u64 {
            let pos = self.overflow.partition_point(|e| *e > ev);
            self.overflow.insert(pos, ev);
            true
        } else {
            let pos = (idx % BUCKETS as u64) as usize;
            self.buckets[pos].push(ev);
            self.occupied[pos / 64] |= 1 << (pos % 64);
            false
        }
    }

    /// Serializes one domain's calendar (ring, overflow, ready list and
    /// cursors) for checkpointing.  The debug-only shadow heap is rebuilt
    /// from the serialized events at load time; the reusable merge buffer
    /// restores empty.
    fn save(&self, w: &mut ByteWriter) {
        w.put_u64(self.granule_ps);
        w.put_u64(self.cursor);
        w.put_u64(self.last_drained_ps);
        for &word in &self.occupied {
            w.put_u64(word);
        }
        for bucket in &self.buckets {
            w.put_usize(bucket.len());
            for ev in bucket {
                ev.save(w);
            }
        }
        w.put_usize(self.overflow.len());
        for ev in &self.overflow {
            ev.save(w);
        }
        w.put_usize(self.lane.len());
        for ev in &self.lane {
            ev.save(w);
        }
        w.put_usize(self.ready.seqs.len());
        for &seq in &self.ready.seqs {
            w.put_u64(seq);
        }
    }

    /// Rebuilds one domain's calendar from [`Timeline::save`] output.
    fn load(r: &mut ByteReader<'_>) -> CodecResult<Self> {
        let granule_ps = r.u64()?;
        if granule_ps == 0 {
            return Err(serde::codec::CodecError::BadTag {
                what: "timeline granule",
                got: 0,
            });
        }
        let mut tl = Timeline::new(granule_ps);
        tl.cursor = r.u64()?;
        tl.last_drained_ps = r.u64()?;
        for word in &mut tl.occupied {
            *word = r.u64()?;
        }
        for bucket in &mut tl.buckets {
            let n = r.usize()?;
            bucket.reserve(n);
            for _ in 0..n {
                bucket.push(TimelineEvent::load(r)?);
            }
        }
        let n = r.usize()?;
        tl.overflow.reserve(n);
        for _ in 0..n {
            tl.overflow.push(TimelineEvent::load(r)?);
        }
        let n = r.usize()?;
        tl.lane.reserve(n);
        for _ in 0..n {
            tl.lane.push_back(TimelineEvent::load(r)?);
        }
        let n = r.usize()?;
        tl.ready.seqs.reserve(n);
        for _ in 0..n {
            tl.ready.seqs.push(r.u64()?);
        }
        // The reference heap mirrors the pending-event set; reconstruct it
        // from the restored ring and overflow list.
        #[cfg(debug_assertions)]
        {
            for bucket in &tl.buckets {
                for &ev in bucket {
                    tl.shadow.push(std::cmp::Reverse(ev));
                }
            }
            for &ev in &tl.overflow {
                tl.shadow.push(std::cmp::Reverse(ev));
            }
            for &ev in &tl.lane {
                tl.shadow.push(std::cmp::Reverse(ev));
            }
        }
        Ok(tl)
    }
}

/// The unified per-domain event machinery of the kernel: one calendar
/// queue (plus ready list) per domain, carrying tagged completion and
/// wakeup events, drained in a single deterministic pass per domain cycle.
///
/// See the [module documentation](self) for the bucket layout, the
/// overflow rules and the drain-order invariant.
#[derive(Debug)]
pub struct DomainTimeline {
    /// Per-domain lower bound on the earliest pending event time
    /// (`TimePs::MAX` when none): pushes lower it, slow drains recompute
    /// it from the occupancy bitmap and the retained scan minimum.  Most
    /// domain cycles have nothing due, and this bound settles them with a
    /// single comparison against one shared cache line — the calendar
    /// equivalent of a heap peek.
    next_due_ps: [TimePs; 5],
    domains: Vec<Timeline>,
    stats: EventTrafficStats,
}

impl DomainTimeline {
    /// Creates empty timelines with the given per-domain bucket granules
    /// (index = [`DomainId::index`]; use each domain clock's
    /// [`mcd_clock::DomainClock::target_period_ps`]).
    pub fn new(granules_ps: [TimePs; 5]) -> Self {
        DomainTimeline {
            next_due_ps: [TimePs::MAX; 5],
            domains: granules_ps.iter().map(|&g| Timeline::new(g)).collect(),
            stats: EventTrafficStats::default(),
        }
    }

    /// Schedules the completion of `seq` at `time` in `domain`.
    #[inline]
    pub fn push_completion(&mut self, domain: DomainId, time: TimePs, seq: SeqNum) {
        self.push(
            domain,
            TimelineEvent {
                time,
                seq,
                kind: EventKind::Completion,
            },
        );
    }

    /// Schedules instruction `seq` to become issueable in `domain` at
    /// `time`.  An instruction may be scheduled *again* at an earlier time
    /// (a producer retirement re-wakes consumers early); the ready-list
    /// merge deduplicates, and the caller filters events for instructions
    /// that already issued.
    #[inline]
    pub fn push_wakeup(&mut self, domain: DomainId, time: TimePs, seq: SeqNum) {
        self.push(
            domain,
            TimelineEvent {
                time,
                seq,
                kind: EventKind::Wakeup,
            },
        );
    }

    #[inline]
    fn push(&mut self, domain: DomainId, ev: TimelineEvent) {
        self.stats.pushes += 1;
        let di = domain.index();
        self.next_due_ps[di] = self.next_due_ps[di].min(ev.time);
        let tl = &mut self.domains[di];
        #[cfg(debug_assertions)]
        tl.shadow.push(std::cmp::Reverse(ev));
        // Monotone fast path: an event not earlier than the lane's tail
        // appends in O(1) with one comparison — no bucket math, and no
        // re-file cost at granule changes.  Out-of-order events take the
        // calendar as before.
        if tl.lane.back().is_none_or(|&back| ev >= back) {
            tl.lane.push_back(ev);
            self.stats.lane_pushes += 1;
        } else if tl.place(ev) {
            self.stats.overflow_spills += 1;
        }
    }

    /// Re-quantizes `domain`'s calendar under a new bucket granule (the
    /// domain's new settled period after a controller command), re-indexing
    /// every pending event so the time-to-bucket mapping stays consistent
    /// between push and drain across the frequency change.  `O(live
    /// events)`, paid once per retarget.
    pub fn set_granule(&mut self, domain: DomainId, granule_ps: TimePs) {
        assert!(granule_ps > 0, "timeline granule must be positive");
        let tl = &mut self.domains[domain.index()];
        if granule_ps == tl.granule_ps {
            return;
        }
        let mut pending = std::mem::take(&mut tl.overflow);
        for bucket in &mut tl.buckets {
            pending.append(bucket);
        }
        tl.occupied = [0; 2];
        tl.granule_ps = granule_ps;
        tl.cursor = tl.last_drained_ps / granule_ps;
        for ev in pending {
            if tl.place(ev) {
                self.stats.overflow_spills += 1;
            }
        }
    }

    /// The fast-path check opening one domain cycle's drain: returns
    /// `false` — with no work beyond one comparison against the next-due
    /// bound — when nothing can be due at `now`.  Callers skip their
    /// drain-loop setup entirely in that case; `true` means due events may
    /// exist and [`DomainTimeline::collect_due`] must run.
    #[inline]
    pub fn has_due(&self, domain: DomainId, now: TimePs) -> bool {
        if now < self.next_due_ps[domain.index()] {
            #[cfg(debug_assertions)]
            if let Some(std::cmp::Reverse(head)) = self.domains[domain.index()].shadow.peek() {
                debug_assert!(
                    head.time > now,
                    "next-due bound skipped a due event (due {} <= now {})",
                    head.time,
                    now
                );
            }
            return false;
        }
        true
    }

    /// Collects every event of `domain` due at `now` into `out` (cleared
    /// first), in `(time, seq, kind)` order, and advances the drain cursor.
    ///
    /// Events pushed *while the caller processes the batch* at exactly
    /// `now` (same-domain completions wake consumers in the same cycle) are
    /// picked up by the next call with the same `now` — callers loop until
    /// the batch comes back empty.  `now` must be non-decreasing per domain
    /// (domain time is monotone).
    #[inline]
    pub fn collect_due(&mut self, domain: DomainId, now: TimePs, out: &mut Vec<TimelineEvent>) {
        out.clear();
        // Fast path — the common case by far: nothing due.  The next-due
        // bound is sound (pushes lower it, the slow path recomputes it),
        // so one comparison settles the cycle, like the peek of the heaps
        // this structure replaced.  The cursor is left alone; the next
        // slow drain catches it up.
        if !self.has_due(domain, now) {
            return;
        }
        self.collect_due_slow(domain, now, out);
    }

    fn collect_due_slow(&mut self, domain: DomainId, now: TimePs, out: &mut Vec<TimelineEvent>) {
        self.stats.drains += 1;
        let tl = &mut self.domains[domain.index()];
        // Monotone lane: sorted non-decreasing, so the due events form a
        // prefix popping from the front.
        while tl.lane.front().is_some_and(|ev| ev.time <= now) {
            out.push(tl.lane.pop_front().expect("checked non-empty"));
        }
        // Overflow: sorted descending, so due events pop from the back.
        while tl.overflow.last().is_some_and(|ev| ev.time <= now) {
            out.push(tl.overflow.pop().expect("checked non-empty"));
        }
        // Scan the occupied buckets up to `now`'s granule, steered by the
        // occupancy bitmap: the cursor jumps from one occupied bucket to
        // the next, skipping empty granules entirely.  The bucket
        // containing `now` may retain events later in the same granule, so
        // the cursor stays on it and it is re-scanned next drain.  A
        // re-drain within the same cycle (the caller's drain loop) reuses
        // the cursor as the target, skipping the division.
        let target = if now == tl.last_drained_ps {
            tl.cursor
        } else {
            now / tl.granule_ps
        };
        let mut kept_min = TimePs::MAX; // min retained in the target bucket
        let mut scanned = 0u64;
        // The loop value is the ring's contribution to the next-due bound.
        let ring_bound: TimePs = loop {
            let Some(off) = tl.first_occupied_offset() else {
                break TimePs::MAX; // ring empty
            };
            let idx = tl.cursor + u64::from(off);
            if idx > target {
                // Earliest occupied bucket lies beyond `now`'s granule;
                // its granule start bounds every ring event from below.
                debug_assert_eq!(kept_min, TimePs::MAX, "past bucket retained an event");
                break idx * tl.granule_ps;
            }
            tl.cursor = idx; // no occupied bucket behind: window may advance
            scanned += 1;
            let pos = (idx % BUCKETS as u64) as usize;
            let bucket = &mut tl.buckets[pos];
            let mut j = 0;
            while j < bucket.len() {
                if bucket[j].time <= now {
                    out.push(bucket.swap_remove(j));
                } else {
                    kept_min = kept_min.min(bucket[j].time);
                    j += 1;
                }
            }
            let emptied = bucket.is_empty();
            if emptied {
                tl.occupied[pos / 64] &= !(1 << (pos % 64));
            }
            if idx == target {
                break if !emptied {
                    // Retained events in the target bucket are the ring's
                    // earliest (every other occupied bucket is strictly
                    // later in time).
                    kept_min
                } else {
                    match tl.first_occupied_offset() {
                        None => TimePs::MAX,
                        Some(off) => (tl.cursor + u64::from(off)) * tl.granule_ps,
                    }
                };
            }
            // A bucket strictly before `now`'s granule drains completely
            // (all its times are below the granule end, hence <= now).
            debug_assert!(emptied, "past bucket retained an event");
            tl.cursor = idx + 1;
        };
        if tl.cursor < target {
            // Nothing occupied between the cursor and `now`'s granule:
            // bring the window base current so pushes see a fresh horizon.
            tl.cursor = target;
        }
        self.stats.bucket_scans += scanned;
        let overflow_bound = tl.overflow.last().map_or(TimePs::MAX, |ev| ev.time);
        let lane_bound = tl.lane.front().map_or(TimePs::MAX, |ev| ev.time);
        self.next_due_ps[domain.index()] = ring_bound.min(overflow_bound).min(lane_bound);
        tl.last_drained_ps = now;
        if out.len() > 1 {
            out.sort_unstable();
        }
        self.stats.pops += out.len() as u64;
        // Cross-check the calendar drain against the reference heap: same
        // events, same order, nothing due left behind.
        #[cfg(debug_assertions)]
        {
            for ev in out.iter() {
                let std::cmp::Reverse(head) = tl
                    .shadow
                    .pop()
                    .expect("calendar drained an event the reference heap does not hold");
                debug_assert_eq!(
                    head, *ev,
                    "calendar drain order diverged from the reference heap"
                );
            }
            if let Some(std::cmp::Reverse(head)) = tl.shadow.peek() {
                debug_assert!(
                    head.time > now,
                    "calendar left a due event undrained (due {} <= now {})",
                    head.time,
                    now
                );
            }
        }
    }

    /// Folds a batch of woken instructions into `domain`'s ready list
    /// (consumes the batch; see `ReadyList::extend_sorted`).
    #[inline]
    pub fn extend_ready(&mut self, domain: DomainId, woken: &mut Vec<SeqNum>) {
        self.domains[domain.index()].ready.extend_sorted(woken);
    }

    /// The instructions of `domain` that are issueable as of the last
    /// drain, oldest first.
    #[inline]
    pub fn ready(&self, domain: DomainId) -> &[SeqNum] {
        &self.domains[domain.index()].ready.seqs
    }

    /// Removes an instruction from `domain`'s ready list at issue.
    #[inline]
    pub fn remove_ready(&mut self, domain: DomainId, seq: SeqNum) {
        self.domains[domain.index()].ready.remove(seq);
    }

    /// The accumulated event-traffic counters (all domains combined).
    pub fn stats(&self) -> EventTrafficStats {
        self.stats
    }

    /// Serializes every domain's calendar and the traffic counters for
    /// checkpointing.
    pub fn save(&self, w: &mut ByteWriter) {
        for &t in &self.next_due_ps {
            w.put_u64(t);
        }
        w.put_usize(self.domains.len());
        for tl in &self.domains {
            tl.save(w);
        }
        w.put_u64(self.stats.pushes);
        w.put_u64(self.stats.pops);
        w.put_u64(self.stats.overflow_spills);
        w.put_u64(self.stats.bucket_scans);
        w.put_u64(self.stats.drains);
        w.put_u64(self.stats.lane_pushes);
    }

    /// Rebuilds the timelines from [`DomainTimeline::save`] output.
    ///
    /// # Errors
    ///
    /// Returns a decode error on truncation, invalid tags or a domain-count
    /// mismatch.
    pub fn load(r: &mut ByteReader<'_>) -> CodecResult<Self> {
        let mut next_due_ps = [TimePs::MAX; 5];
        for t in &mut next_due_ps {
            *t = r.u64()?;
        }
        let n = r.usize()?;
        if n != DomainId::ALL.len() {
            return Err(serde::codec::CodecError::BadTag {
                what: "timeline domain count",
                got: n as u64,
            });
        }
        let mut domains = Vec::with_capacity(n);
        for _ in 0..n {
            domains.push(Timeline::load(r)?);
        }
        let stats = EventTrafficStats {
            pushes: r.u64()?,
            pops: r.u64()?,
            overflow_spills: r.u64()?,
            bucket_scans: r.u64()?,
            drains: r.u64()?,
            lane_pushes: r.u64()?,
        };
        Ok(DomainTimeline {
            next_due_ps,
            domains,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: [TimePs; 5] = [1_000; 5];

    fn drain(t: &mut DomainTimeline, d: DomainId, now: TimePs) -> Vec<TimelineEvent> {
        let mut out = Vec::new();
        t.collect_due(d, now, &mut out);
        out
    }

    fn completions(events: &[TimelineEvent]) -> Vec<(TimePs, SeqNum)> {
        events
            .iter()
            .filter(|e| e.kind == EventKind::Completion)
            .map(|e| (e.time, e.seq))
            .collect()
    }

    #[test]
    fn completions_drain_in_time_then_seq_order_and_respect_due_time() {
        let mut t = DomainTimeline::new(G);
        let d = DomainId::Integer;
        t.push_completion(d, 300, 7);
        t.push_completion(d, 100, 9);
        t.push_completion(d, 100, 2);
        t.push_completion(d, 500, 1);
        assert!(drain(&mut t, d, 50).is_empty());
        assert_eq!(
            completions(&drain(&mut t, d, 300)),
            vec![(100, 2), (100, 9), (300, 7)]
        );
        assert!(drain(&mut t, d, 300).is_empty());
        assert_eq!(completions(&drain(&mut t, d, 1_000)), vec![(500, 1)]);
    }

    #[test]
    fn domains_are_independent() {
        let mut t = DomainTimeline::new(G);
        t.push_completion(DomainId::Integer, 10, 1);
        t.push_completion(DomainId::LoadStore, 10, 2);
        assert!(drain(&mut t, DomainId::FloatingPoint, 100).is_empty());
        assert_eq!(
            completions(&drain(&mut t, DomainId::Integer, 100)),
            vec![(10, 1)]
        );
        assert!(drain(&mut t, DomainId::Integer, 100).is_empty());
        assert_eq!(
            completions(&drain(&mut t, DomainId::LoadStore, 100)),
            vec![(10, 2)]
        );
    }

    #[test]
    fn completions_order_before_wakeups_at_equal_time_and_seq() {
        let mut t = DomainTimeline::new(G);
        let d = DomainId::Integer;
        t.push_wakeup(d, 100, 5);
        t.push_completion(d, 100, 5);
        let due = drain(&mut t, d, 100);
        assert_eq!(due.len(), 2);
        assert_eq!(due[0].kind, EventKind::Completion);
        assert_eq!(due[1].kind, EventKind::Wakeup);
    }

    #[test]
    fn due_wakeups_feed_a_seq_sorted_ready_list() {
        let mut t = DomainTimeline::new(G);
        let d = DomainId::Integer;
        t.push_wakeup(d, 100, 9);
        t.push_wakeup(d, 300, 2);
        t.push_wakeup(d, 200, 5);
        assert!(drain(&mut t, d, 50).is_empty());
        let mut woken: Vec<SeqNum> = drain(&mut t, d, 250).iter().map(|e| e.seq).collect();
        t.extend_ready(d, &mut woken);
        // 9 woke before 5 in time, but the list is seq-sorted.
        assert_eq!(t.ready(d), &[5, 9]);
        let mut woken: Vec<SeqNum> = drain(&mut t, d, 300).iter().map(|e| e.seq).collect();
        t.extend_ready(d, &mut woken);
        assert_eq!(t.ready(d), &[2, 5, 9]);
        // Issue removes; losing arbitration (no call) keeps the entry.
        t.remove_ready(d, 5);
        assert_eq!(t.ready(d), &[2, 9]);
        t.remove_ready(d, 5); // idempotent on absent seqs
        assert_eq!(t.ready(d), &[2, 9]);
    }

    #[test]
    fn ready_merge_deduplicates_within_batch_and_against_the_list() {
        let mut t = DomainTimeline::new(G);
        let d = DomainId::Integer;
        t.extend_ready(d, &mut vec![7, 7, 3]);
        assert_eq!(t.ready(d), &[3, 7]);
        // A later duplicate of an existing entry must not re-insert it.
        t.extend_ready(d, &mut vec![7, 5]);
        assert_eq!(t.ready(d), &[3, 5, 7]);
    }

    #[test]
    fn reverse_seq_arrival_merges_in_one_pass() {
        // The historical worst case: a batch of wakeups arriving in
        // descending sequence order, each landing in front of the previous
        // one.  The batched merge must produce the sorted list (and do so
        // with one merge pass rather than k front-inserts — the behaviour
        // this test locks in is correctness; the cost shape is documented
        // in the module docs).
        let mut t = DomainTimeline::new(G);
        let d = DomainId::Integer;
        let mut batch: Vec<SeqNum> = (0..100).rev().collect();
        t.extend_ready(d, &mut batch);
        let expected: Vec<SeqNum> = (0..100).collect();
        assert_eq!(t.ready(d), &expected[..]);
        // Interleaving a second descending batch exercises the merge path
        // (not the append fast path) end to end.
        let mut batch: Vec<SeqNum> = (100..200).rev().step_by(2).collect();
        t.extend_ready(d, &mut batch);
        let tail: Vec<SeqNum> = (100..200).step_by(2).map(|s| s + 1).collect();
        assert_eq!(t.ready(d)[100..], tail[..]);
        assert_eq!(t.ready(d)[..100], expected[..]);
    }

    #[test]
    fn far_future_events_spill_to_overflow_and_still_drain_in_order() {
        let mut t = DomainTimeline::new(G);
        let d = DomainId::LoadStore;
        let horizon = 1_000 * BUCKETS as u64;
        t.push_completion(d, horizon + 5_000, 1); // first push: monotone lane
        t.push_completion(d, horizon + 2_000, 2); // out of order, beyond ring: spills
        t.push_completion(d, 500, 3); // out of order, in ring
        assert_eq!(t.stats().overflow_spills, 1);
        assert_eq!(t.stats().lane_pushes, 1);
        assert_eq!(completions(&drain(&mut t, d, 600)), vec![(500, 3)]);
        // Overflow events surface in (time, seq) order once due.
        assert_eq!(
            completions(&drain(&mut t, d, horizon + 10_000)),
            vec![(horizon + 2_000, 2), (horizon + 5_000, 1)]
        );
        assert_eq!(t.stats().pops, 3);
        assert_eq!(t.stats().pushes, 3);
    }

    #[test]
    fn granule_change_reindexes_pending_events() {
        let mut t = DomainTimeline::new(G);
        let d = DomainId::Integer;
        // Drain once so the re-index anchor is a real drain time.
        assert!(drain(&mut t, d, 1_500).is_empty());
        t.push_completion(d, 4_000, 1); // monotone lane
        t.push_completion(d, 2_000, 2); // out of order: ring
        t.push_wakeup(d, 700_000, 3); // monotone again: lane (no spill)
        assert_eq!(t.stats().overflow_spills, 0);
        assert_eq!(t.stats().lane_pushes, 2);
        // The controller slows the domain to a 4x period: all pending
        // events re-file under the new mapping (the far-future wakeup now
        // fits the wider ring).
        t.set_granule(d, 4_000);
        assert_eq!(
            completions(&drain(&mut t, d, 5_000)),
            vec![(2_000, 2), (4_000, 1)]
        );
        let due = drain(&mut t, d, 800_000);
        assert_eq!(due.len(), 1);
        assert_eq!((due[0].seq, due[0].kind), (3, EventKind::Wakeup));
    }

    #[test]
    fn same_time_pushes_during_processing_surface_on_the_next_collect() {
        // A same-domain completion at `now` pushes a consumer wakeup at
        // exactly `now`; the kernel's drain loop picks it up by calling
        // collect_due again with the same `now`.
        let mut t = DomainTimeline::new(G);
        let d = DomainId::FloatingPoint;
        t.push_completion(d, 2_000, 4);
        let due = drain(&mut t, d, 2_000);
        assert_eq!(completions(&due), vec![(2_000, 4)]);
        t.push_wakeup(d, 2_000, 6); // pushed "while processing seq 4"
        let due = drain(&mut t, d, 2_000);
        assert_eq!(due.len(), 1);
        assert_eq!((due[0].seq, due[0].kind), (6, EventKind::Wakeup));
        assert!(drain(&mut t, d, 2_000).is_empty());
    }

    #[test]
    fn save_load_preserves_pending_events_and_drain_order() {
        let mut t = DomainTimeline::new(G);
        let d = DomainId::Integer;
        assert!(drain(&mut t, d, 1_500).is_empty());
        t.push_completion(d, 2_000, 4);
        t.push_wakeup(d, 2_000, 6);
        t.push_completion(d, 3_000, 2);
        t.push_wakeup(d, 1_000 * BUCKETS as u64 + 9_000, 1); // far future, in-order: lane
        t.extend_ready(d, &mut vec![3, 8]);
        t.push_completion(DomainId::LoadStore, 7_000, 9);

        let mut w = serde::codec::ByteWriter::new();
        t.save(&mut w);
        let bytes = w.into_vec();
        let mut r = serde::codec::ByteReader::new(&bytes);
        let mut restored = DomainTimeline::load(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(restored.ready(d), t.ready(d));
        assert_eq!(restored.stats(), t.stats());
        for now in [2_000, 5_000, 1_000 * BUCKETS as u64 + 10_000] {
            assert_eq!(
                drain(&mut restored, d, now),
                drain(&mut t, d, now),
                "drain divergence at {now}"
            );
            assert_eq!(
                drain(&mut restored, DomainId::LoadStore, now),
                drain(&mut t, DomainId::LoadStore, now)
            );
        }
        assert_eq!(restored.stats(), t.stats());
    }

    #[test]
    fn timeline_load_rejects_bad_event_kind() {
        let mut t = DomainTimeline::new(G);
        t.push_completion(DomainId::Integer, 500, 1);
        let mut w = serde::codec::ByteWriter::new();
        t.save(&mut w);
        let mut bytes = w.into_vec();
        // The single serialized event's kind byte is the last byte of its
        // 17-byte record; corrupt every 0x00 kind byte candidate by
        // scanning for the event payload (time=500, seq=1).
        let needle = {
            let mut n = Vec::new();
            n.extend_from_slice(&500u64.to_le_bytes());
            n.extend_from_slice(&1u64.to_le_bytes());
            n.push(0);
            n
        };
        let pos = bytes
            .windows(needle.len())
            .position(|win| win == needle)
            .expect("serialized event not found");
        bytes[pos + needle.len() - 1] = 7;
        let mut r = serde::codec::ByteReader::new(&bytes);
        assert!(DomainTimeline::load(&mut r).is_err());
    }

    #[test]
    fn traffic_counters_accumulate() {
        let mut t = DomainTimeline::new(G);
        let d = DomainId::Integer;
        t.push_completion(d, 1_000, 1);
        t.push_wakeup(d, 1_500, 2);
        let _ = drain(&mut t, d, 2_000);
        let s = t.stats();
        assert_eq!(s.pushes, 2);
        assert_eq!(s.pops, 2);
        assert_eq!(s.drains, 1);
        // Both pushes arrived in order, so the lane absorbed them and the
        // ring was never scanned.
        assert_eq!(s.lane_pushes, 2);
        assert_eq!(s.bucket_scans, 0);
        assert_eq!(s.overflow_spills, 0);
    }

    #[test]
    fn out_of_order_pushes_fall_back_to_the_calendar_and_merge_with_the_lane() {
        let mut t = DomainTimeline::new(G);
        let d = DomainId::Integer;
        // Ascending run lands in the lane; an earlier event then takes the
        // ring, and a later one re-enters the lane.
        t.push_completion(d, 2_000, 1);
        t.push_completion(d, 2_500, 2);
        t.push_completion(d, 1_000, 3); // out of order: ring
        t.push_wakeup(d, 3_000, 4); // monotone again: lane
        assert_eq!(t.stats().lane_pushes, 3);
        // A drain merges lane and ring batches into one ordered sequence.
        let due = drain(&mut t, d, 2_200);
        assert_eq!(
            due.iter().map(|e| (e.time, e.seq)).collect::<Vec<_>>(),
            vec![(1_000, 3), (2_000, 1)]
        );
        // The next-due bound sees the remaining lane events.
        assert!(drain(&mut t, d, 2_400).is_empty());
        assert_eq!(completions(&drain(&mut t, d, 2_500)), vec![(2_500, 2)]);
        let due = drain(&mut t, d, 3_000);
        assert_eq!(due.len(), 1);
        assert_eq!((due[0].seq, due[0].kind), (4, EventKind::Wakeup));
    }
}
