//! Event queues of the simulation kernel.
//!
//! Completion events ("instruction `seq` finishes executing at time `t` in
//! domain `d`") used to live in per-domain `Vec`s that every domain cycle
//! re-scanned with `retain` and re-sorted.  [`CompletionQueues`] replaces
//! them with per-domain binary min-heaps keyed on `(completion time, seq)`:
//! each cycle pops only the events that are actually due, in exactly the
//! deterministic `(time, seq)` order the old sort produced, at `O(log n)`
//! per event instead of `O(n)` per cycle.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mcd_clock::{DomainId, TimePs};
use mcd_isa::SeqNum;

/// Per-domain min-heaps of pending completion events.
#[derive(Debug, Default)]
pub(crate) struct CompletionQueues {
    heaps: [BinaryHeap<Reverse<(TimePs, SeqNum)>>; 5],
}

impl CompletionQueues {
    /// Creates empty queues for all five domains.
    pub(crate) fn new() -> Self {
        CompletionQueues::default()
    }

    /// Schedules the completion of `seq` at `time` in `domain`.
    #[inline]
    pub(crate) fn push(&mut self, domain: DomainId, time: TimePs, seq: SeqNum) {
        self.heaps[domain.index()].push(Reverse((time, seq)));
    }

    /// Pops the earliest completion of `domain` that is due at `now`, if
    /// any.  Events with equal times pop in sequence-number order, keeping
    /// writeback deterministic.
    #[inline]
    pub(crate) fn pop_due(&mut self, domain: DomainId, now: TimePs) -> Option<(TimePs, SeqNum)> {
        let heap = &mut self.heaps[domain.index()];
        match heap.peek() {
            Some(&Reverse((t, _))) if t <= now => {
                let Reverse(event) = heap.pop().expect("peeked event exists");
                Some(event)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order_and_respects_due_time() {
        let mut q = CompletionQueues::new();
        let d = DomainId::Integer;
        q.push(d, 300, 7);
        q.push(d, 100, 9);
        q.push(d, 100, 2);
        q.push(d, 500, 1);
        assert_eq!(q.pop_due(d, 50), None);
        assert_eq!(q.pop_due(d, 300), Some((100, 2)));
        assert_eq!(q.pop_due(d, 300), Some((100, 9)));
        assert_eq!(q.pop_due(d, 300), Some((300, 7)));
        assert_eq!(q.pop_due(d, 300), None);
        assert_eq!(q.pop_due(d, 1_000), Some((500, 1)));
    }

    #[test]
    fn domains_are_independent() {
        let mut q = CompletionQueues::new();
        q.push(DomainId::Integer, 10, 1);
        q.push(DomainId::LoadStore, 10, 2);
        assert_eq!(q.pop_due(DomainId::FloatingPoint, 100), None);
        assert_eq!(q.pop_due(DomainId::Integer, 100), Some((10, 1)));
        assert_eq!(q.pop_due(DomainId::Integer, 100), None);
        assert_eq!(q.pop_due(DomainId::LoadStore, 100), Some((10, 2)));
    }
}
