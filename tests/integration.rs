//! Cross-crate integration tests: full simulations spanning the workload
//! generator, the MCD processor, the power model, the control algorithms
//! and the experiment harness.
//!
//! These tests assert the qualitative claims of the paper that the
//! reproduction must preserve: the baseline MCD processor is only slightly
//! slower than a fully synchronous one; the Attack/Decay algorithm trades a
//! bounded slowdown for substantial energy savings; the off-line oracle is
//! at least competitive with the on-line algorithm; and conventional global
//! voltage scaling yields a power/performance ratio near 2.

use mcd::clock::DomainId;
use mcd::control::AttackDecayParams;
use mcd::core::experiments::{run_suite, table6, traces, ExperimentSettings};
use mcd::core::metrics::{suite_average, Comparison};
use mcd::core::runner::{BenchmarkRunner, ConfigKind};
use mcd::workloads::Benchmark;

fn quick_settings(benchmarks: Vec<Benchmark>) -> ExperimentSettings {
    ExperimentSettings {
        benchmarks,
        instructions: 60_000,
        interval_instructions: 1_000,
        seed: 42,
        global_search_iters: 3,
        parallel: true,
        jobs: None,
        slice_cycles: None,
        max_live_runs: None,
        share_traces: None,
        result_cache: None,
        prefix_cycles: None,
        gang: None,
    }
}

#[test]
fn baseline_mcd_inherent_degradation_is_small() {
    // Paper Section 2: the inherent performance degradation of the MCD
    // processor (synchronization penalties only) is a few percent.
    let runner = BenchmarkRunner::new(60_000, 7).with_interval(1_000);
    let mut degradations = Vec::new();
    for bench in [Benchmark::Adpcm, Benchmark::Gzip, Benchmark::Swim] {
        let sync = runner.run(bench, &ConfigKind::FullySynchronous).result;
        let mcd = runner.run(bench, &ConfigKind::BaselineMcd).result;
        let deg = mcd.elapsed_ps as f64 / sync.elapsed_ps as f64 - 1.0;
        assert!(
            deg > -0.02,
            "{}: MCD cannot be meaningfully faster ({deg})",
            bench.name()
        );
        assert!(
            deg < 0.12,
            "{}: inherent MCD degradation too large ({deg})",
            bench.name()
        );
        degradations.push(deg);
        // The MCD configuration also pays extra clock energy.
        assert!(mcd.chip_energy() > sync.chip_energy());
    }
    let avg = degradations.iter().sum::<f64>() / degradations.len() as f64;
    assert!(
        avg < 0.08,
        "average inherent degradation should be small, got {avg}"
    );
}

#[test]
fn attack_decay_saves_energy_with_bounded_slowdown_across_suites() {
    // The headline claim of the paper (Table 6): substantial energy savings
    // for a few percent of performance degradation, relative to the
    // baseline MCD processor.
    let settings = quick_settings(vec![
        Benchmark::Adpcm,
        Benchmark::Epic,
        Benchmark::Gzip,
        Benchmark::Treeadd,
        Benchmark::Swim,
    ]);
    let outcomes = run_suite(&settings);
    let comparisons: Vec<Comparison> = outcomes
        .iter()
        .map(|o| Comparison::vs(&o.attack_decay, &o.baseline_mcd))
        .collect();
    let avg = suite_average(&comparisons);
    // The paper's 19% savings accrue over thousands of 10k-instruction
    // control intervals; this smoke test only spans ~60, so the decay has
    // little room to act.  We require clearly positive savings here and
    // leave the full-scale numbers to the benchmark harness
    // (EXPERIMENTS.md).
    assert!(
        avg.energy_savings > 0.01,
        "Attack/Decay should save energy, got {:.3}",
        avg.energy_savings
    );
    assert!(
        avg.perf_degradation < 0.12,
        "Attack/Decay slowdown must stay bounded, got {:.3}",
        avg.perf_degradation
    );
    assert!(
        avg.edp_improvement > 0.0,
        "the energy-delay product must improve on average, got {:.3}",
        avg.edp_improvement
    );
    // The power-savings / performance-degradation ratio must beat the
    // global-scaling figure of ~2 that the paper quotes for conventional
    // DVFS.
    if avg.perf_degradation > 0.01 {
        let ratio = avg.power_savings / avg.perf_degradation;
        assert!(
            ratio > 1.0,
            "per-domain scaling must convert slowdown into power savings, ratio {ratio:.2}"
        );
    }
}

#[test]
fn offline_oracle_is_competitive_with_online_algorithm() {
    // The paper: the off-line Dynamic-1% algorithm achieves somewhat better
    // energy-delay product than the reactive on-line algorithm; Dynamic-5%
    // saves more energy at a higher performance cost.
    let settings = quick_settings(vec![Benchmark::Epic, Benchmark::Gzip, Benchmark::Swim]);
    let outcomes = run_suite(&settings);
    let avg_for = |pick: fn(&mcd::core::experiments::BenchmarkOutcomes) -> &mcd::sim::SimResult| {
        suite_average(
            &outcomes
                .iter()
                .map(|o| Comparison::vs(pick(o), &o.baseline_mcd))
                .collect::<Vec<_>>(),
        )
    };
    let ad = avg_for(|o| &o.attack_decay);
    let d1 = avg_for(|o| &o.dynamic1);
    let d5 = avg_for(|o| &o.dynamic5);
    assert!(
        d1.energy_savings > 0.0,
        "Dynamic-1% must save energy, got {:.3}",
        d1.energy_savings
    );
    assert!(
        d5.energy_savings > 0.0,
        "Dynamic-5% must save energy, got {:.3}",
        d5.energy_savings
    );
    assert!(
        d5.perf_degradation >= d1.perf_degradation - 0.01,
        "the more aggressive oracle costs at least as much performance ({:.3} vs {:.3})",
        d5.perf_degradation,
        d1.perf_degradation
    );
    // The on-line algorithm's savings are reactive and therefore smaller on
    // these short windows, but it must not be drastically worse than the
    // oracle in energy-delay product.
    assert!(
        ad.edp_improvement > d1.edp_improvement - 0.25,
        "Attack/Decay ({:.3}) must stay within reach of Dynamic-1% ({:.3})",
        ad.edp_improvement,
        d1.edp_improvement
    );
}

#[test]
fn global_scaling_power_performance_ratio_is_near_two() {
    // Paper Table 6: conventional global voltage scaling achieves a power
    // savings to performance degradation ratio of about 2 with this
    // frequency/voltage table.
    let runner = BenchmarkRunner::new(50_000, 11).with_interval(1_000);
    let mut ratios = Vec::new();
    for bench in [Benchmark::Adpcm, Benchmark::Gsm] {
        let sync = runner.run(bench, &ConfigKind::FullySynchronous).result;
        let (_, scaled) = runner.find_global_matching(bench, 0.05, &sync, 4);
        let cmp = Comparison::vs(&scaled.result, &sync);
        if cmp.perf_degradation > 0.01 {
            ratios.push(cmp.power_savings / cmp.perf_degradation);
        }
    }
    assert!(!ratios.is_empty());
    for r in &ratios {
        assert!(
            *r > 1.0 && *r < 3.5,
            "global scaling ratio should sit near 2, got {r:.2}"
        );
    }
}

#[test]
fn epic_decode_fp_domain_tracks_the_phase_structure() {
    // Figures 2 and 3: during epic decode the FP domain frequency rises in
    // the FP bursts and decays in between; the load/store domain frequency
    // moves with LSQ pressure.
    let data = traces::run(150_000, 42);
    assert!(data.points.len() >= 50);
    let (fp_min, fp_max) = data.fp_freq_range();
    assert!(
        fp_max > fp_min + 0.02,
        "FP frequency must move ({fp_min}..{fp_max})"
    );
    assert!(fp_min < 0.99, "FP domain must decay while idle");
    // The FIQ utilisation must show both idle and busy intervals.
    let max_fiq = data
        .points
        .iter()
        .map(|p| p.fiq_utilization)
        .fold(0.0f64, f64::max);
    let min_fiq = data
        .points
        .iter()
        .map(|p| p.fiq_utilization)
        .fold(f64::MAX, f64::min);
    assert!(
        max_fiq > 1.0,
        "the FP bursts must load the FP issue queue, max {max_fiq}"
    );
    assert!(
        min_fiq < 0.5,
        "the FP-idle phases must leave the queue nearly empty, min {min_fiq}"
    );
}

#[test]
fn attack_decay_parks_unused_fp_domain_and_keeps_busy_domains_fast() {
    let runner = BenchmarkRunner::new(80_000, 13).with_interval(1_000);
    // gzip: no floating point at all.
    let gzip = runner.run(
        Benchmark::Gzip,
        &ConfigKind::AttackDecay(AttackDecayParams::paper_defaults()),
    );
    let fp_avg = gzip.result.avg_freq(DomainId::FloatingPoint).unwrap();
    let int_avg = gzip.result.avg_freq(DomainId::Integer).unwrap();
    assert!(
        fp_avg < int_avg,
        "the unused FP domain must end up slower than the integer domain"
    );
    // swim: heavy floating point; its FP domain must stay much faster than
    // gzip's.
    let swim = runner.run(
        Benchmark::Swim,
        &ConfigKind::AttackDecay(AttackDecayParams::paper_defaults()),
    );
    let swim_fp = swim.result.avg_freq(DomainId::FloatingPoint).unwrap();
    assert!(
        swim_fp > fp_avg,
        "swim's FP domain ({swim_fp:.0} MHz) must run faster than gzip's ({fp_avg:.0} MHz)"
    );
}

#[test]
fn runs_are_deterministic_across_identical_invocations() {
    let run = || {
        let runner = BenchmarkRunner::new(30_000, 99).with_interval(1_000);
        let out = runner.run(
            Benchmark::Mcf,
            &ConfigKind::AttackDecay(AttackDecayParams::paper_defaults()),
        );
        (
            out.result.elapsed_ps,
            out.result.frontend_cycles,
            out.result.chip_energy(),
            out.result.memory_accesses,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert!((a.2 - b.2).abs() < 1e-9);
    assert_eq!(a.3, b.3);
}

#[test]
fn table6_quick_reproduction_has_the_paper_ordering() {
    // Reduced-settings smoke reproduction of Table 6's qualitative shape:
    // all three MCD algorithms save energy relative to the baseline MCD
    // processor, and the oracle with the looser target saves the most.
    let settings = quick_settings(vec![Benchmark::Epic, Benchmark::Gzip, Benchmark::Mcf]);
    let rows = table6::mcd_rows(&run_suite(&settings));
    assert_eq!(rows.len(), 3);
    for row in &rows {
        assert!(
            row.energy_savings > 0.0,
            "{} should save energy, got {:.3}",
            row.algorithm,
            row.energy_savings
        );
    }
    let d1 = rows.iter().find(|r| r.algorithm == "Dynamic-1%").unwrap();
    let d5 = rows.iter().find(|r| r.algorithm == "Dynamic-5%").unwrap();
    assert!(
        d5.perf_degradation >= d1.perf_degradation - 0.02,
        "Dynamic-5% accepts more slowdown than Dynamic-1% ({:.3} vs {:.3})",
        d5.perf_degradation,
        d1.perf_degradation
    );
}
