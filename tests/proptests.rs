//! Property-based tests over the core data structures and invariants of the
//! reproduction, spanning several crates.

use proptest::prelude::*;

use mcd::clock::{DomainId, OperatingPointTable, SyncWindow};
use mcd::control::{
    AttackDecayController, AttackDecayParams, DomainSample, FrequencyController, IntervalSample,
};
use mcd::core::{restore_with, snapshot, BenchmarkRunner, ConfigKind, GangRun};
use mcd::isa::{InstructionStream, MemInfo, Reg};
use mcd::microarch::{
    Cache, CacheConfig, IssueQueue, LoadStoreQueue, LsqIssue, ReorderBuffer, RobEntry,
};
use mcd::power::{EnergyAccount, EnergyParams, Structure};
use mcd::sim::{
    DomainTimeline, EventKind, McdProcessor, SimConfig, SimResult, StepOutcome, TimelineEvent,
};
use mcd::workloads::{
    Benchmark, BranchBehavior, InstructionMix, MemoryBehavior, Phase, SharedTrace,
    WorkloadGenerator, WorkloadSpec,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The operating-point table always returns frequencies inside the MCD
    /// range, `at_least` never under-delivers, and `nearest` is idempotent.
    #[test]
    fn operating_point_lookups_stay_in_range(freq in 0.0f64..5_000.0) {
        let table = OperatingPointTable::default();
        let nearest = table.nearest(freq);
        prop_assert!(nearest.freq_mhz >= 250.0 - 1e-9);
        prop_assert!(nearest.freq_mhz <= 1000.0 + 1e-9);
        prop_assert_eq!(table.nearest(nearest.freq_mhz).index, nearest.index);
        let at_least = table.at_least(freq);
        if freq <= 1000.0 {
            prop_assert!(at_least.freq_mhz + 1e-9 >= freq.max(250.0));
        }
        // Voltage tracks frequency monotonically.
        let v = table.voltage_for_freq(nearest.freq_mhz);
        prop_assert!((0.65 - 1e-9..=1.2 + 1e-9).contains(&v));
    }

    /// Synchronization capture never travels backwards in time and never
    /// waits more than one destination period plus the window when the
    /// destination edge is not in the future.
    #[test]
    fn sync_capture_is_causal(
        src in 0u64..1_000_000,
        edge in 0u64..10_000,
        period in 1_000u64..4_000,
        window in 0u64..400,
    ) {
        let sync = SyncWindow::new(window);
        let t = sync.capture_time(src, edge, period);
        prop_assert!(t >= src);
        if edge <= src {
            prop_assert!(t - src <= period + window);
        }
    }

    /// Monte-Carlo check of the expected-latency formula: sweeping source
    /// times uniformly across whole destination periods samples the
    /// gap-to-next-edge distribution exactly, so the empirical mean latency
    /// must equal `period/2 + window` up to half a picosecond of
    /// discretization — for *any* window up to a full period.  (This is the
    /// regression test for the historical `period/2 + window/2` bug, which
    /// under-counted the full-period slip the window forces with
    /// probability `window/period`.)
    #[test]
    fn empirical_sync_latency_mean_matches_formula(
        edge in 0u64..10_000,
        period in 1_000u64..3_000,
        window_frac in 0.0f64..1.0,
    ) {
        let window = ((period as f64 * window_frac) as u64).min(period);
        let sync = SyncWindow::new(window);
        let periods = 20u64;
        let n = periods * period;
        let mut total = 0u64;
        // Start the sweep at the recorded destination edge so every source
        // time exercises the extrapolation path and the gap to the next
        // edge cycles through all `period` residues exactly `periods`
        // times.
        for src in edge..edge + n {
            total += sync.capture_time(src, edge, period) - src;
        }
        let mean = total as f64 / n as f64;
        let expected = sync.expected_latency_ps(period);
        prop_assert!(
            (mean - (expected - 0.5)).abs() < 1e-6,
            "period {} window {}: empirical mean {} vs formula {}",
            period, window, mean, expected
        );
    }

    /// The Attack/Decay controller keeps every commanded frequency inside
    /// the operating range for arbitrary utilization/IPC sequences.
    #[test]
    fn attack_decay_commands_stay_in_range(
        utils in proptest::collection::vec((0.0f64..64.0, 0.0f64..20.0, 0.0f64..64.0), 1..60),
        ipcs in proptest::collection::vec(0.01f64..4.0, 1..60),
    ) {
        let table = OperatingPointTable::default();
        let mut ctrl = AttackDecayController::new(AttackDecayParams::paper_defaults(), &table);
        for (i, (int_u, fp_u, ls_u)) in utils.iter().enumerate() {
            let ipc = ipcs[i % ipcs.len()];
            let mk = |domain, queue_utilization| DomainSample {
                domain,
                queue_utilization,
                domain_cycles: 10_000,
                busy_cycles: 5_000,
                issued_instructions: 9_000,
                freq_mhz: 1000.0,
            };
            let sample = IntervalSample {
                interval: i as u64,
                instructions: 10_000,
                frontend_cycles: 11_000,
                ipc,
                domains: vec![
                    mk(DomainId::Integer, *int_u),
                    mk(DomainId::FloatingPoint, *fp_u),
                    mk(DomainId::LoadStore, *ls_u),
                ],
            };
            for cmd in ctrl.interval_update(&sample) {
                prop_assert!(cmd.target_freq_mhz >= 250.0 - 1e-9);
                prop_assert!(cmd.target_freq_mhz <= 1000.0 + 1e-9);
            }
        }
    }

    /// Cache behaviour under arbitrary access sequences: hits are only
    /// reported for previously touched lines, statistics stay consistent,
    /// and a probe after an access always hits.
    #[test]
    fn cache_invariants_hold_for_arbitrary_accesses(
        addrs in proptest::collection::vec(0u64..1_000_000, 1..300),
    ) {
        let mut cache = Cache::new(CacheConfig::l1_64k_2way());
        let mut touched = std::collections::HashSet::new();
        for &addr in &addrs {
            let line = addr / 64;
            let hit = cache.access(addr, false);
            if hit {
                prop_assert!(touched.contains(&line), "hit on a never-touched line");
            }
            touched.insert(line);
            prop_assert!(cache.probe(addr), "line must be resident right after an access");
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.accesses(), addrs.len() as u64);
        prop_assert!(stats.misses <= stats.accesses());
        prop_assert!(stats.miss_rate() >= 0.0 && stats.miss_rate() <= 1.0);
    }

    /// Issue-queue occupancy never exceeds capacity and the average
    /// occupancy accumulator is bounded by the capacity.
    #[test]
    fn issue_queue_occupancy_is_bounded(ops in proptest::collection::vec(0u8..3, 1..200)) {
        let mut q = IssueQueue::new(20);
        let mut next_seq = 0u64;
        let mut live: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                0 => {
                    if q.insert(next_seq).is_ok() {
                        live.push(next_seq);
                    }
                    next_seq += 1;
                }
                1 => {
                    if let Some(seq) = live.pop() {
                        prop_assert!(q.remove(seq));
                    }
                }
                _ => q.accumulate_occupancy(),
            }
            prop_assert!(q.len() <= q.capacity());
            prop_assert_eq!(q.len(), live.len());
        }
        let avg = q.take_average_occupancy();
        prop_assert!(avg <= 20.0);
    }

    /// The ROB retires strictly in program order regardless of the
    /// completion order.
    #[test]
    fn rob_retires_in_program_order(completion_order in proptest::collection::vec(0usize..16, 16)) {
        let mut rob = ReorderBuffer::new(16);
        for seq in 0..16u64 {
            rob.push(RobEntry::new(seq, mcd::isa::OpClass::IntAlu)).unwrap();
        }
        for &idx in &completion_order {
            rob.mark_completed(idx as u64, 0);
        }
        let mut last: Option<u64> = None;
        while let Some(e) = rob.retire_head(0) {
            if let Some(prev) = last {
                prop_assert!(e.seq > prev);
            }
            last = Some(e.seq);
        }
    }

    /// The O(1) older-store summary (min-unready-store sequence number +
    /// counting address filter) must reproduce the historical full LSQ
    /// scan's issue/stall decision for every load, on arbitrary program
    /// streams: random load/store mixes over a small address pool (forcing
    /// real overlaps), addresses spanning many filter periods (forcing
    /// bucket-aliasing false positives), operands becoming ready in
    /// arbitrary order (as ramp-shortened producer latencies reorder
    /// completions), and mid-stream removals.
    #[test]
    fn lsq_summary_decisions_match_the_full_scan(
        ops in proptest::collection::vec((0u8..4, 0u64..260, 0u8..4), 1..120),
    ) {
        /// The historical full-scan disambiguation, reimplemented over the
        /// public iterator as the reference.
        fn reference_decision(q: &LoadStoreQueue, seq: u64) -> LsqIssue {
            let Some(load) = q.iter().find(|e| e.seq == seq) else {
                return LsqIssue::Blocked;
            };
            let mut forward = None;
            for e in q.iter().filter(|e| e.is_store && e.seq < seq) {
                if !e.operands_ready {
                    return LsqIssue::Blocked;
                }
                if e.mem.overlaps(&load.mem) {
                    if e.mem.addr <= load.mem.addr
                        && e.mem.addr + e.mem.size as u64 >= load.mem.addr + load.mem.size as u64
                    {
                        forward = Some(e.seq);
                    } else {
                        return LsqIssue::Blocked;
                    }
                }
            }
            forward.map(LsqIssue::Forward).unwrap_or(LsqIssue::AccessCache)
        }

        let mut q = LoadStoreQueue::new(32);
        let mut next_seq = 0u64;
        let mut live: Vec<u64> = Vec::new();
        for (op, addr_sel, size_sel) in ops {
            match op {
                // Insert a load or store; addresses stride by 4 over ~1 KiB,
                // wrapping around several 512-byte filter periods so distinct
                // addresses alias in the 64 x 8-byte filter buckets.
                0 | 1 => {
                    let addr = addr_sel * 4;
                    let size = 1u8 << size_sel; // 1, 2, 4 or 8 bytes
                    if q.insert(next_seq, op == 1, MemInfo::new(addr, size), 0).is_ok() {
                        live.push(next_seq);
                    }
                    next_seq += 1;
                }
                // Ready an arbitrary live entry (completion order is not
                // program order under frequency ramps).
                2 => {
                    if !live.is_empty() {
                        let seq = live[(addr_sel as usize) % live.len()];
                        q.set_operands_ready(seq);
                    }
                }
                // Remove an arbitrary live entry.
                _ => {
                    if !live.is_empty() {
                        let idx = (addr_sel as usize) % live.len();
                        let seq = live.swap_remove(idx);
                        prop_assert!(q.remove(seq));
                    }
                }
            }
            // Every load's summary-based decision must equal the reference
            // full scan, after every mutation.
            let loads: Vec<u64> = q
                .iter()
                .filter(|e| !e.is_store)
                .map(|e| e.seq)
                .collect();
            for seq in loads {
                prop_assert_eq!(q.load_issue_decision(seq), reference_decision(&q, seq));
            }
        }
    }

    /// The LSQ never reorders a load past an older store with an unknown
    /// address.
    #[test]
    fn lsq_blocks_loads_behind_unknown_stores(load_addr in 0u64..4096, store_addr in 0u64..4096) {
        let mut lsq = LoadStoreQueue::new(8);
        lsq.insert(1, true, mcd::isa::MemInfo::new(store_addr * 8, 8), 0).unwrap();
        lsq.insert(2, false, mcd::isa::MemInfo::new(load_addr * 8, 8), 0).unwrap();
        lsq.set_operands_ready(2);
        // While the store address is unknown the load must not issue.
        prop_assert_eq!(lsq.load_issue_decision(2), mcd::microarch::LsqIssue::Blocked);
        lsq.set_operands_ready(1);
        let decision = lsq.load_issue_decision(2);
        if store_addr == load_addr {
            prop_assert_eq!(decision, mcd::microarch::LsqIssue::Forward(1));
        } else {
            prop_assert_eq!(decision, mcd::microarch::LsqIssue::AccessCache);
        }
    }

    /// Energy accounting is monotone (recording work never decreases the
    /// total) and voltage scaling never increases the cost of an access.
    #[test]
    fn energy_accounting_is_monotone(
        accesses in proptest::collection::vec((0usize..14, 1u64..50, 0.65f64..1.2), 1..100),
    ) {
        let params = EnergyParams::default();
        let structures: Vec<Structure> = Structure::ALL
            .iter()
            .copied()
            .filter(|s| !s.is_clock() && *s != Structure::MainMemory)
            .collect();
        let mut acct = EnergyAccount::new(params.clone());
        let mut prev = 0.0;
        for (idx, count, voltage) in accesses {
            let s = structures[idx % structures.len()];
            acct.record_access(s, count, voltage);
            let total = acct.total_energy();
            prop_assert!(total >= prev);
            prev = total;
            // The same access at the nominal voltage costs at least as much.
            let low = params.access_energy(s) * params.voltage_scale(voltage);
            let high = params.access_energy(s);
            prop_assert!(low <= high + 1e-12);
        }
    }

    /// The per-domain calendar-queue timeline must drain *exactly* the
    /// events a reference binary min-heap would pop, in the same
    /// `(time, seq, kind)` order, on arbitrary event streams: random times
    /// (including far-future events beyond the ring horizon, which take
    /// the sorted-overflow path), random sequence numbers and kinds
    /// (exercising the completion-before-wakeup tie-break), pushes
    /// interleaved with drains at random time steps, and mid-stream bucket
    /// granule changes (as the controller retargets a domain's period),
    /// which force a full re-index.
    #[test]
    fn timeline_drains_match_a_reference_heap(
        ops in proptest::collection::vec(
            (0u8..8, 0u64..600_000, 0u64..64, 0u8..2, 1u64..5_000),
            1..200,
        ),
    ) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let domain = DomainId::Integer;
        let granule = 1_000;
        let mut timeline = DomainTimeline::new([granule; 5]);
        let mut reference: BinaryHeap<Reverse<TimelineEvent>> = BinaryHeap::new();
        let mut now = 0u64;
        let mut out = Vec::new();
        let drain_and_compare = |timeline: &mut DomainTimeline,
                                     reference: &mut BinaryHeap<Reverse<TimelineEvent>>,
                                     now: u64,
                                     out: &mut Vec<TimelineEvent>|
         -> Result<(), TestCaseError> {
            timeline.collect_due(domain, now, out);
            let mut expected = Vec::new();
            while reference.peek().is_some_and(|Reverse(ev)| ev.time <= now) {
                expected.push(reference.pop().expect("peeked").0);
            }
            prop_assert_eq!(&expected[..], &out[..]);
            Ok(())
        };
        for (op, delta, seq, kind_sel, new_granule) in ops {
            match op {
                // Push (biased: most ops schedule near-future events; the
                // range reaches past the 128-bucket ring horizon so some
                // take the overflow path).
                0..=4 => {
                    let time = now + delta;
                    let kind = if kind_sel == 0 {
                        timeline.push_completion(domain, time, seq);
                        EventKind::Completion
                    } else {
                        timeline.push_wakeup(domain, time, seq);
                        EventKind::Wakeup
                    };
                    reference.push(Reverse(TimelineEvent { time, seq, kind }));
                }
                // Advance time and drain; both structures must yield the
                // same events in the same order.
                5 | 6 => {
                    now += delta % 20_000;
                    drain_and_compare(&mut timeline, &mut reference, now, &mut out)?;
                }
                // Mid-stream period change: re-quantizes every pending
                // bucket (the drain order must be unaffected).
                _ => timeline.set_granule(domain, new_granule),
            }
        }
        // Final drain far past every scheduled event: nothing may be lost.
        now += 10_000_000;
        drain_and_compare(&mut timeline, &mut reference, now, &mut out)?;
        prop_assert!(reference.is_empty());
        prop_assert_eq!(timeline.stats().pushes, timeline.stats().pops);
    }

    /// The rename map never reports the zero register as having a producer.
    #[test]
    fn zero_register_never_gets_a_producer(seqs in proptest::collection::vec(0u64..1000, 1..50)) {
        let mut map = mcd::microarch::RenameMap::new();
        for seq in seqs {
            map.set_producer(Reg::int(31), seq);
            map.set_producer(Reg::fp(31), seq);
            prop_assert_eq!(map.producer(Reg::int(31)), None);
            prop_assert_eq!(map.producer(Reg::fp(31)), None);
        }
    }
}

/// Runs `stream` for `insts` instructions under the baseline MCD
/// configuration, pausing at the given slice boundaries (cycled through
/// repeatedly until the run finishes).  An empty sequence means one
/// unbounded slice.
fn run_stream_with_slices<S: InstructionStream>(
    mut stream: S,
    insts: u64,
    slices: &[u64],
) -> SimResult {
    let mut cpu = McdProcessor::new(
        SimConfig::baseline_mcd(insts),
        Box::new(mcd::control::FixedController::at_max()),
    );
    let mut boundary = slices.iter().copied().cycle();
    loop {
        let slice = boundary.next().unwrap_or(u64::MAX);
        if let StepOutcome::Finished(r) = cpu.run_for(&mut stream, slice) {
            return r;
        }
    }
}

/// [`run_stream_with_slices`] over `bench`'s live generator at seed 42.
fn run_with_slices(bench: Benchmark, insts: u64, slices: &[u64]) -> SimResult {
    run_stream_with_slices(
        WorkloadGenerator::new(&bench.spec(), 42, insts),
        insts,
        slices,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Pause/resume bit-identity of the simulation kernel: for *any*
    /// sequence of slice boundaries — including single-step slices and
    /// slices far larger than the whole run — a sliced execution must
    /// produce a `SimResult` equal to the unsliced run (host-throughput
    /// telemetry is excluded from equality by design).  This is the
    /// invariant the work-stealing experiment engine rests on: it makes
    /// the scheduler's slice boundaries (and therefore worker count,
    /// migration pattern and slice length) invisible in every result.
    #[test]
    fn sliced_runs_are_bit_identical_for_random_slice_boundaries(
        raw_slices in proptest::collection::vec((0u8..4, 0u64..45_000), 1..8),
        bench_sel in 0u8..2,
    ) {
        // Each drawn pair picks a slice-length class and a magnitude
        // within it: degenerate single-step slices, small slices (many
        // pauses), mid-size slices (a handful of pauses), and slices far
        // larger than the whole run (no pause at all).
        let slices: Vec<u64> = raw_slices
            .iter()
            .map(|&(class, magnitude)| match class {
                0 => 1,
                1 => 2 + magnitude % 200,
                2 => 5_000 + magnitude,
                _ => 1_000_000 + magnitude,
            })
            .collect();
        let bench = if bench_sel == 0 { Benchmark::Gzip } else { Benchmark::Swim };
        let insts = 4_000;
        let unsliced = run_with_slices(bench, insts, &[]);
        let sliced = run_with_slices(bench, insts, &slices);
        prop_assert!(
            sliced == unsliced,
            "slice sequence {:?} changed the result",
            slices
        );
        prop_assert_eq!(sliced.committed_instructions, insts);
    }

    /// Shared-trace replay bit-identity: a [`SharedTrace`] cursor must be
    /// indistinguishable from the live generator it recorded — the same
    /// instruction at every position, the same `remaining_hint` (the
    /// frontend uses it for fetch gating), and the same `SimResult` when
    /// the replay is additionally chopped by *any* sequence of `run_for`
    /// pause boundaries.  This is the invariant that lets the experiment
    /// engine substitute one materialized trace for every same-workload
    /// run of a plan.
    #[test]
    fn trace_replay_is_bit_identical_for_random_slice_boundaries(
        raw_slices in proptest::collection::vec((0u8..4, 0u64..45_000), 1..8),
        bench_sel in 0u8..3,
        seed in 0u64..1_000,
    ) {
        let slices: Vec<u64> = raw_slices
            .iter()
            .map(|&(class, magnitude)| match class {
                0 => 1,
                1 => 2 + magnitude % 200,
                2 => 5_000 + magnitude,
                _ => 1_000_000 + magnitude,
            })
            .collect();
        let bench = [Benchmark::Gzip, Benchmark::Swim, Benchmark::Mcf][bench_sel as usize];
        let insts = 4_000;
        let spec = bench.spec();
        let trace = std::sync::Arc::new(SharedTrace::materialize(&spec, seed, insts));

        // Stream-level equality at every position.
        let mut live = WorkloadGenerator::new(&spec, seed, insts);
        let mut cursor = trace.cursor();
        loop {
            prop_assert_eq!(cursor.remaining_hint(), live.remaining_hint());
            match (cursor.next_inst(), live.next_inst()) {
                (None, None) => break,
                (a, b) => prop_assert_eq!(a, b),
            }
        }

        // Simulated-result equality: live unsliced vs replay sliced at
        // arbitrary pause boundaries.
        let live_run =
            run_stream_with_slices(WorkloadGenerator::new(&spec, seed, insts), insts, &[]);
        let traced_run = run_stream_with_slices(trace.cursor(), insts, &slices);
        prop_assert!(
            traced_run == live_run,
            "trace replay with slices {:?} changed the result",
            slices
        );
    }

    /// Annotation-fed dispatch bit-identity: a [`SharedTrace`] carries a
    /// precomputed annotation sidecar (last-writer dependence edges,
    /// source counts, flags and memory filter masks), and the frontend
    /// consumes it instead of re-deriving producers from the rename map
    /// when the stream exposes one.  For *any* generated workload spec,
    /// seed and sequence of pause boundaries, the annotation-fed replay
    /// must produce a `SimResult` bit-identical to the live-generator run
    /// that re-derives everything per dispatch — and every instruction
    /// must actually take the annotation path, which the host-telemetry
    /// counters (excluded from equality by design) make observable.
    #[test]
    fn annotation_fed_dispatch_matches_live_rename_derivation(
        int_alu in 0.1f64..0.6,
        load in 0.05f64..0.4,
        store in 0.0f64..0.2,
        branch in 0.02f64..0.3,
        fp in 0.0f64..0.4,
        seed in 0u64..1_000,
        raw_slices in proptest::collection::vec((0u8..4, 0u64..45_000), 1..6),
    ) {
        let slices: Vec<u64> = raw_slices
            .iter()
            .map(|&(class, magnitude)| match class {
                0 => 1,
                1 => 2 + magnitude % 200,
                2 => 5_000 + magnitude,
                _ => 1_000_000 + magnitude,
            })
            .collect();
        let mix = InstructionMix {
            int_alu,
            int_mul: 0.01,
            fp_add: fp / 2.0,
            fp_mul: fp / 2.0,
            fp_div: 0.0,
            load,
            store,
            branch,
        };
        let phase = Phase::new(1.0, mix)
            .with_memory(MemoryBehavior::cache_resident())
            .with_branches(BranchBehavior::predictable());
        let spec = WorkloadSpec::new("ann-prop", "proptest", vec![phase], 1.0);
        let insts = 3_000;
        let trace = std::sync::Arc::new(SharedTrace::materialize(&spec, seed, insts));
        // One annotation row per recorded instruction.
        prop_assert_eq!(trace.annotations().len(), insts as usize);

        let live = run_stream_with_slices(WorkloadGenerator::new(&spec, seed, insts), insts, &[]);
        let fed = run_stream_with_slices(trace.cursor(), insts, &slices);
        prop_assert!(
            fed == live,
            "annotation-fed replay with slices {:?} diverged from the live run",
            slices
        );
        prop_assert_eq!(fed.committed_instructions, insts);
        // Dispatch-path accounting: the replay fed every instruction from
        // the sidecar, the live run re-derived every one from the rename
        // map (each instruction dispatches exactly once — there is no
        // wrong-path refetch).
        prop_assert_eq!(fed.host.ann_fed, insts);
        prop_assert_eq!(fed.host.ann_recomputed, 0);
        prop_assert_eq!(live.host.ann_fed, 0);
        prop_assert_eq!(live.host.ann_recomputed, insts);
    }

    /// Snapshot/restore replay contract: for *any* chain of pause points
    /// — including degenerate single-step pauses, pauses mid-frequency-
    /// ramp (Attack/Decay under a short control interval), and pauses
    /// holding a mid-trace cursor (shared-trace replay) — serializing the
    /// paused run to bytes, dropping the live run, and restoring from the
    /// bytes must leave the final `SimResult` bit-identical to the
    /// uninterrupted run.  This is the contract both the run-bundle
    /// verifier and the checkpoint prefix-fork rest on.
    #[test]
    fn snapshot_restore_chains_are_bit_identical(
        raw_pauses in proptest::collection::vec((0u8..4, 0u64..45_000), 1..6),
        bench_sel in 0u8..2,
        share_sel in 0u8..2,
        config_sel in 0u8..2,
        seed in 0u64..1_000,
    ) {
        let pauses: Vec<u64> = raw_pauses
            .iter()
            .map(|&(class, magnitude)| match class {
                0 => 1,
                1 => 2 + magnitude % 200,
                2 => 5_000 + magnitude,
                _ => 1_000_000 + magnitude,
            })
            .collect();
        let bench = if bench_sel == 0 { Benchmark::Gzip } else { Benchmark::Swim };
        let kind = if config_sel == 0 {
            ConfigKind::AttackDecay(AttackDecayParams::paper_defaults())
        } else {
            ConfigKind::BaselineMcd
        };
        let share_traces = share_sel == 1;
        let insts = 3_000;
        // The short control interval forces frequency ramps under
        // Attack/Decay, so some pause points land mid-ramp.
        let runner = BenchmarkRunner::new(insts, seed)
            .with_interval(500)
            .with_trace_sharing(share_traces)
            .with_result_caching(false);
        let whole = runner.run(bench, &kind);

        let mut run = runner.begin(bench, &kind);
        let mut early = None;
        for &pause in &pauses {
            match run.step(pause) {
                Some(outcome) => {
                    early = Some(outcome);
                    break;
                }
                None => {
                    let bytes = snapshot(&run);
                    drop(run);
                    run = restore_with(&bytes, runner.trace_cache().map(|c| c.as_ref()))
                        .expect("snapshot restores");
                }
            }
        }
        let outcome = match early {
            Some(o) => o,
            None => loop {
                if let Some(o) = run.step(u64::MAX) {
                    break o;
                }
            },
        };
        prop_assert!(
            outcome.result == whole.result,
            "pause chain {:?} changed the result (sharing={})",
            pauses,
            share_traces
        );
        prop_assert_eq!(outcome.result.committed_instructions, insts);
    }

    /// Gang-execution bit-identity: for *any* gang size, lockstep window
    /// length and sequence of step budgets, every member of a
    /// [`GangRun`] must finish with a `SimResult` bit-identical to the
    /// same run executed alone.  Gang membership, member order, window
    /// size and step granularity are scheduling decisions only — this is
    /// the invariant that lets the engine fuse a plan's same-trace grid
    /// cells into one scheduler slot.  Both stepping disciplines are
    /// exercised: the batched laggard-window sweep and the legacy
    /// pick-one round-robin.
    #[test]
    fn gang_execution_is_bit_identical_to_solo_runs(
        decay_steps in proptest::collection::vec(1u32..21, 2..6),
        window_sel in 0u8..4,
        raw_budgets in proptest::collection::vec((0u8..4, 0u64..45_000), 1..6),
        seed in 0u64..1_000,
        batch_sel in 0u8..2,
    ) {
        // Window classes: degenerate single-instruction windows, small
        // windows (many hand-offs), mid-size, and windows larger than
        // the whole trace (plain round-robin).
        let window_insts = match window_sel {
            0 => 1,
            1 => 64,
            2 => 1_000,
            _ => 1 << 20,
        };
        let budgets: Vec<u64> = raw_budgets
            .iter()
            .map(|&(class, magnitude)| match class {
                0 => 1,
                1 => 2 + magnitude % 200,
                2 => 5_000 + magnitude,
                _ => 1_000_000 + magnitude,
            })
            .collect();
        let insts = 3_000;
        // Trace sharing stays on (the gang's members hold cursors into
        // one trace, exercising the lockstep window bookkeeping); result
        // caching off so every member actually simulates.
        let runner = BenchmarkRunner::new(insts, seed)
            .with_interval(500)
            .with_result_caching(false);
        let kinds: Vec<ConfigKind> = decay_steps
            .iter()
            .map(|&d| {
                let mut p = AttackDecayParams::paper_defaults();
                p.decay = f64::from(d) / 1_000.0;
                ConfigKind::AttackDecay(p)
            })
            .collect();
        let solo: Vec<_> = kinds
            .iter()
            .map(|k| runner.run(Benchmark::Gzip, k))
            .collect();

        let mut gang = GangRun::new(window_insts).with_batched(batch_sel == 1);
        for (slot, kind) in kinds.iter().enumerate() {
            gang.push(slot, Box::new(runner.begin(Benchmark::Gzip, kind)));
        }
        let mut i = 0usize;
        while !gang.is_done() {
            gang.step(budgets[i % budgets.len()]);
            i += 1;
        }
        let mut finished = gang.take_finished();
        finished.sort_by_key(|&(slot, _)| slot);
        prop_assert_eq!(finished.len(), kinds.len());
        for ((slot, outcome), reference) in finished.iter().zip(&solo) {
            prop_assert!(
                outcome.result == reference.result,
                "gang member {} (window {}, budgets {:?}) diverged from its solo run",
                slot,
                window_insts,
                budgets
            );
            prop_assert_eq!(outcome.result.committed_instructions, insts);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any valid instruction mix expands into a stream of valid
    /// instructions whose class fractions roughly follow the mix.
    #[test]
    fn workload_generator_respects_arbitrary_mixes(
        int_alu in 0.1f64..0.6,
        load in 0.05f64..0.4,
        store in 0.0f64..0.2,
        branch in 0.02f64..0.3,
        fp in 0.0f64..0.4,
        seed in 0u64..1_000,
    ) {
        let mix = InstructionMix {
            int_alu,
            int_mul: 0.01,
            fp_add: fp / 2.0,
            fp_mul: fp / 2.0,
            fp_div: 0.0,
            load,
            store,
            branch,
        };
        let phase = Phase::new(1.0, mix)
            .with_memory(MemoryBehavior::cache_resident())
            .with_branches(BranchBehavior::predictable());
        let spec = WorkloadSpec::new("prop", "proptest", vec![phase], 1.0);
        let mut generator = WorkloadGenerator::new(&spec, seed, 4_000);
        let mut count = 0u64;
        let mut mem_ops = 0u64;
        while let Some(inst) = generator.next_inst() {
            prop_assert!(inst.validate().is_ok());
            if inst.is_mem() {
                mem_ops += 1;
            }
            count += 1;
        }
        prop_assert_eq!(count, 4_000);
        let expected_mem = (load + store) / mix.total();
        let observed_mem = mem_ops as f64 / count as f64;
        prop_assert!((observed_mem - expected_mem).abs() < 0.08);
    }
}
