//! Facade crate for the MCD DVFS reproduction workspace.
//!
//! Re-exports the public API of `mcd-core` and the substrate crates so that
//! examples and downstream users can depend on a single crate.

pub use mcd_clock as clock;
pub use mcd_control as control;
pub use mcd_core as core;
pub use mcd_isa as isa;
pub use mcd_microarch as microarch;
pub use mcd_power as power;
pub use mcd_sim as sim;
pub use mcd_workloads as workloads;
