//! Writes a verifiable run bundle and immediately replay-verifies it —
//! the CI driver for the bundle replay contract.
//!
//! A bundle is a directory holding one run's identity, a chain of
//! mid-run snapshots and a digest of the final result, all
//! content-hashed into a plain-text manifest (see `mcd_core::bundle`).
//! Verification restores every snapshot in the chain and re-runs its
//! tail to the recorded result digest, so a bundle that passes is a
//! portable witness that the recorded result is what this simulator
//! produces for that identity.
//!
//! ```sh
//! cargo run --release --example run_bundle -- target/run_bundle
//! ```

use mcd::control::AttackDecayParams;
use mcd::core::{replay_verify, write_bundle, BundleSpec, ConfigKind};
use mcd::workloads::Benchmark;
use std::path::PathBuf;

fn main() {
    let dir = PathBuf::from(
        std::env::args()
            .nth(1)
            .unwrap_or_else(|| "target/run_bundle".into()),
    );
    let spec = BundleSpec {
        benchmark: Benchmark::Gzip,
        config: ConfigKind::AttackDecay(AttackDecayParams::paper_defaults()),
        seed: 42,
        instructions: 12_000,
        interval_instructions: 10_000,
        record_traces: false,
        checkpoints: vec![3_000, 9_000],
    };
    let written = write_bundle(&spec, &dir).expect("bundle writes");
    println!(
        "wrote bundle to {}: {} checkpoint(s), {} committed instructions",
        dir.display(),
        written.checkpoints,
        written.committed_instructions
    );
    let verified = replay_verify(&dir).expect("fresh bundle verifies");
    assert_eq!(
        verified, written,
        "verification must replay the chain it was written with"
    );
    println!(
        "replay-verified {} checkpoint(s): every snapshot restores and re-runs to the recorded result digest",
        verified.checkpoints
    );
}
