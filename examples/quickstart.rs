//! Quickstart: simulate one benchmark under the baseline MCD processor and
//! under the Attack/Decay controller, and print the paper's headline
//! metrics for the pair.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use mcd::control::AttackDecayParams;
use mcd::core::metrics::Comparison;
use mcd::core::presets;
use mcd::core::runner::{BenchmarkRunner, ConfigKind};
use mcd::workloads::Benchmark;

fn main() {
    println!("{}", presets::render_table1());

    let bench = Benchmark::Epic;
    let runner = BenchmarkRunner::new(80_000, 42).with_interval(1_000);

    let baseline = runner.run(bench, &ConfigKind::BaselineMcd);
    let attack = runner.run(
        bench,
        &ConfigKind::AttackDecay(AttackDecayParams::paper_defaults()),
    );

    println!("benchmark: {}", bench.name());
    println!(
        "  baseline MCD   : CPI {:.2}, EPI {:.1}, time {:.1} us",
        baseline.result.cpi(),
        baseline.result.epi(),
        baseline.result.seconds() * 1e6
    );
    println!(
        "  Attack/Decay   : CPI {:.2}, EPI {:.1}, time {:.1} us",
        attack.result.cpi(),
        attack.result.epi(),
        attack.result.seconds() * 1e6
    );

    let cmp = Comparison::vs(&attack.result, &baseline.result);
    println!(
        "  vs baseline MCD: perf degradation {:+.1}%, energy savings {:+.1}%, EDP improvement {:+.1}%",
        cmp.perf_degradation * 100.0,
        cmp.energy_savings * 100.0,
        cmp.edp_improvement * 100.0
    );
}
