//! Reproduces the behaviour of the paper's Figures 2 and 3: the `epic
//! decode` workload has two distinct floating-point phases, and the
//! Attack/Decay controller raises the FP-domain frequency during the bursts
//! and lets it decay while the unit is idle.
//!
//! ```bash
//! cargo run --release --example epic_decode_trace
//! ```

use mcd::core::experiments::traces;

fn main() {
    let data = traces::run(150_000, 42);
    let (fp_min, fp_max) = data.fp_freq_range();
    println!(
        "epic decode: {} control intervals, FP domain frequency range {:.2}-{:.2} GHz",
        data.points.len(),
        fp_min,
        fp_max
    );
    println!("interval  instrs    LSQ-util  dLSQ%    f(LS) GHz  FIQ-util  f(FP) GHz");
    for p in &data.points {
        println!(
            "{:8}  {:8}  {:8.2}  {:+6.1}  {:9.3}  {:8.2}  {:9.3}",
            p.interval,
            p.committed,
            p.lsq_utilization,
            p.lsq_change_pct,
            p.loadstore_freq_ghz,
            p.fiq_utilization,
            p.fp_freq_ghz
        );
    }
}
