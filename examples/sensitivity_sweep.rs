//! Sweeps the Attack/Decay `Decay` parameter (paper Figure 6(a)/7(a)) over
//! a small benchmark subset and prints the energy-delay-product improvement
//! and power/performance ratio at each point.
//!
//! ```bash
//! cargo run --release --example sensitivity_sweep
//! ```

use mcd::core::experiments::{sensitivity, ExperimentSettings};
use mcd::workloads::Benchmark;

fn main() {
    let settings = ExperimentSettings::quick()
        .with_benchmarks(vec![Benchmark::Adpcm, Benchmark::Gzip, Benchmark::Swim])
        .with_instructions(40_000);
    let sweep = sensitivity::sweep_decay(&settings, &[0.0005, 0.00175, 0.0075, 0.02]);
    println!("{}", sweep.render());
}
