//! Bit-identity harness: dumps every determinism-relevant `SimResult`
//! field (committed instructions, cycles, energy to full precision,
//! per-domain average frequencies and the interval frequency trace) for a
//! grid of benchmark × configuration runs with fixed seeds.
//!
//! Kernel optimizations in this repository are required to leave
//! simulation *behaviour* untouched; capture this output before a change
//! and `diff` it after:
//!
//! ```sh
//! cargo run --release --example golden_dump > before.txt
//! # ... hack on the kernel ...
//! cargo run --release --example golden_dump > after.txt && diff before.txt after.txt
//! ```
//!
//! **Sliced mode:** setting `MCD_GOLDEN_SLICE=<kernel steps>` executes
//! every run through repeated `run_for` pauses of that length instead of
//! one unbounded `run`.  The output must be byte-identical to the default
//! mode — this is how the golden matrix also certifies pause/resume
//! bit-identity:
//!
//! ```sh
//! cargo run --release --example golden_dump > unsliced.txt
//! MCD_GOLDEN_SLICE=10000 cargo run --release --example golden_dump > sliced.txt
//! diff unsliced.txt sliced.txt      # any output = slicing changed behaviour
//! ```
//!
//! **Shared-trace mode:** setting `MCD_GOLDEN_TRACE=1` feeds every run a
//! cursor over a materialized [`mcd::workloads::SharedTrace`] instead of
//! the live generator — the replay path the experiment engine's trace
//! cache uses.  The output must again be byte-identical, alone and
//! combined with `MCD_GOLDEN_SLICE`:
//!
//! ```sh
//! MCD_GOLDEN_TRACE=1 cargo run --release --example golden_dump > traced.txt
//! diff unsliced.txt traced.txt      # any output = trace replay changed behaviour
//! ```
//!
//! **Checkpoint mode:** setting `MCD_GOLDEN_CKPT=<kernel steps>` pauses
//! every run after that many steps, serializes the machine *and* its
//! instruction stream with the snapshot codec, drops the live objects,
//! restores from the bytes, and runs the restored machine to completion.
//! The output must be byte-identical to the default mode — this is how
//! the golden matrix certifies checkpoint/restore bit-identity, alone
//! and combined with the other two modes:
//!
//! ```sh
//! MCD_GOLDEN_CKPT=20000 cargo run --release --example golden_dump > ckpt.txt
//! diff unsliced.txt ckpt.txt        # any output = a restore changed behaviour
//! ```
//!
//! **Gang mode:** setting `MCD_GOLDEN_GANG=<window insts>` steps each
//! benchmark's baseline and synchronous runs as one [`mcd::core::GangRun`]
//! — cooperatively, round-robin over lockstep trace windows of the given
//! length — instead of one after the other.  The output must be
//! byte-identical to the default mode, alone and stacked with the other
//! three modes: gang membership and window size are scheduling decisions
//! and may never affect a `SimResult`:
//!
//! ```sh
//! MCD_GOLDEN_GANG=512 cargo run --release --example golden_dump > gang.txt
//! diff unsliced.txt gang.txt        # any output = ganging changed behaviour
//! ```
//!
//! **Batch mode:** setting `MCD_GOLDEN_BATCH=<0|1>` (effective together
//! with `MCD_GOLDEN_GANG`) forces the gang's stepping discipline: `1`
//! selects the batched data-level sweep, `0` the legacy round-robin pick
//! loop, unset the engine default.  Both dumps must be byte-identical to
//! the default mode — the stepping discipline is a scheduling decision
//! and may never affect a `SimResult`:
//!
//! ```sh
//! MCD_GOLDEN_GANG=512 MCD_GOLDEN_BATCH=1 cargo run --release --example golden_dump > b1.txt
//! MCD_GOLDEN_GANG=512 MCD_GOLDEN_BATCH=0 cargo run --release --example golden_dump > b0.txt
//! diff unsliced.txt b1.txt && diff unsliced.txt b0.txt
//! ```

use mcd::clock::OperatingPointTable;
use mcd::control::{
    AttackDecayController, AttackDecayParams, FixedController, FrequencyController,
};
use mcd::core::{ConfigKind, GangRun, PausableRun, RunStream};
use mcd::isa::{DynInst, InstructionStream};
use mcd::sim::{McdProcessor, SimConfig, SimResult, StepOutcome};
use mcd::workloads::{Benchmark, SharedTrace, TraceCursor, WorkloadGenerator};
use serde::codec::{ByteReader, ByteWriter};
use std::sync::Arc;

/// The slice length selected by `MCD_GOLDEN_SLICE`, if any.  An invalid
/// or zero value aborts instead of silently falling back to the unsliced
/// mode — otherwise a typo would make the sliced-vs-unsliced CI diff
/// compare two unsliced dumps and certify pause/resume vacuously.
fn golden_slice() -> Option<u64> {
    let value = std::env::var("MCD_GOLDEN_SLICE").ok()?;
    let steps: u64 = value
        .parse()
        .unwrap_or_else(|_| panic!("MCD_GOLDEN_SLICE must be a positive integer, got {value:?}"));
    assert!(steps > 0, "MCD_GOLDEN_SLICE must be positive, got 0");
    Some(steps)
}

/// Whether `MCD_GOLDEN_TRACE` selects shared-trace replay.  Like
/// [`golden_slice`], anything but `1` or `0` aborts so a typo cannot make
/// the trace-vs-live CI diff compare two live dumps.
fn golden_trace() -> bool {
    match std::env::var("MCD_GOLDEN_TRACE") {
        Err(_) => false,
        Ok(v) if v == "0" => false,
        Ok(v) if v == "1" => true,
        Ok(v) => panic!("MCD_GOLDEN_TRACE must be 0 or 1, got {v:?}"),
    }
}

/// The checkpoint position selected by `MCD_GOLDEN_CKPT`, if any.  Same
/// abort-on-typo policy as [`golden_slice`]: a silently ignored value
/// would make the checkpoint-vs-unsliced CI diff certify restores
/// vacuously.
fn golden_ckpt() -> Option<u64> {
    let value = std::env::var("MCD_GOLDEN_CKPT").ok()?;
    let steps: u64 = value
        .parse()
        .unwrap_or_else(|_| panic!("MCD_GOLDEN_CKPT must be a positive integer, got {value:?}"));
    assert!(steps > 0, "MCD_GOLDEN_CKPT must be positive, got 0");
    Some(steps)
}

/// The gang window length selected by `MCD_GOLDEN_GANG`, if any.  Same
/// abort-on-typo policy as [`golden_slice`]: a silently ignored value
/// would make the gang-vs-solo CI diff certify gang execution vacuously.
fn golden_gang() -> Option<u64> {
    let value = std::env::var("MCD_GOLDEN_GANG").ok()?;
    let insts: u64 = value
        .parse()
        .unwrap_or_else(|_| panic!("MCD_GOLDEN_GANG must be a positive integer, got {value:?}"));
    assert!(insts > 0, "MCD_GOLDEN_GANG must be positive, got 0");
    Some(insts)
}

/// The gang stepping discipline forced by `MCD_GOLDEN_BATCH`, if any.
/// Same abort-on-typo policy as [`golden_trace`]: a silently ignored
/// value would make the batched-vs-round-robin CI diff compare two runs
/// of the same discipline and certify batching vacuously.
fn golden_batch() -> Option<bool> {
    match std::env::var("MCD_GOLDEN_BATCH") {
        Err(_) => None,
        Ok(v) if v == "0" => Some(false),
        Ok(v) if v == "1" => Some(true),
        Ok(v) => panic!("MCD_GOLDEN_BATCH must be 0 or 1, got {v:?}"),
    }
}

/// Either stream the golden matrix runs under, unified so the checkpoint
/// path can serialize whichever one is live (the generator's full cursor
/// state, or the shared-trace cursor's position).
enum GoldenStream {
    Live(WorkloadGenerator),
    Traced(TraceCursor),
}

impl InstructionStream for GoldenStream {
    fn next_inst(&mut self) -> Option<DynInst> {
        match self {
            GoldenStream::Live(g) => g.next_inst(),
            GoldenStream::Traced(c) => c.next_inst(),
        }
    }

    fn remaining_hint(&self) -> Option<u64> {
        match self {
            GoldenStream::Live(g) => g.remaining_hint(),
            GoldenStream::Traced(c) => c.remaining_hint(),
        }
    }

    fn annotations(&self) -> Option<&mcd::isa::TraceAnnotations> {
        match self {
            GoldenStream::Live(_) => None,
            GoldenStream::Traced(c) => c.annotations(),
        }
    }
}

fn run_to_completion<S: InstructionStream>(cpu: &mut McdProcessor, mut stream: S) -> SimResult {
    match golden_slice() {
        None => cpu.run(stream),
        Some(slice) => loop {
            if let StepOutcome::Finished(r) = cpu.run_for(&mut stream, slice) {
                break r;
            }
        },
    }
}

/// One golden run after the optional checkpoint round-trip: either the
/// machine and stream ready to execute to completion, or — when the
/// checkpoint position lies past the run's end — the finished result.
enum Prepared {
    Finished(Box<SimResult>),
    Ready(Box<McdProcessor>, GoldenStream),
}

fn prepare(
    bench: Benchmark,
    insts: u64,
    cfg: SimConfig,
    make_ctrl: &dyn Fn() -> Box<dyn FrequencyController>,
) -> Prepared {
    let spec = bench.spec();
    let trace = golden_trace().then(|| Arc::new(SharedTrace::materialize(&spec, 42, insts)));
    let mut stream = match &trace {
        Some(t) => GoldenStream::Traced(t.cursor()),
        None => GoldenStream::Live(WorkloadGenerator::new(&spec, 42, insts)),
    };
    let mut cpu = McdProcessor::new(cfg.clone(), make_ctrl());

    if let Some(ckpt_steps) = golden_ckpt() {
        if let StepOutcome::Finished(r) = cpu.run_for(&mut stream, ckpt_steps) {
            // The checkpoint lands past the end of this run; the finished
            // result is already the unsliced one.
            return Prepared::Finished(Box::new(r));
        }
        // Serialize the paused machine and its stream, drop the live
        // objects, and rebuild both from the bytes alone (plus the run
        // identity, exactly as the snapshot container does).
        let mut w = ByteWriter::new();
        cpu.save(&mut w);
        match &stream {
            GoldenStream::Live(g) => g.save(&mut w),
            GoldenStream::Traced(c) => w.put_u64(c.position()),
        }
        let bytes = w.into_vec();
        drop(cpu);
        drop(stream);

        let mut r = ByteReader::new(&bytes);
        cpu = McdProcessor::load(&mut r, cfg, make_ctrl()).expect("golden checkpoint restores");
        stream = match &trace {
            Some(t) => {
                let mut cursor = t.cursor();
                let pos = r.u64().expect("trace cursor position present");
                assert!(cursor.seek(pos), "trace cursor position out of range");
                GoldenStream::Traced(cursor)
            }
            None => GoldenStream::Live(
                WorkloadGenerator::load(&mut r, &spec, 42, insts).expect("generator restores"),
            ),
        };
        r.finish().expect("no trailing checkpoint bytes");
    }

    Prepared::Ready(Box::new(cpu), stream)
}

fn dump(
    name: &str,
    bench: Benchmark,
    insts: u64,
    cfg: SimConfig,
    make_ctrl: &dyn Fn() -> Box<dyn FrequencyController>,
) {
    match prepare(bench, insts, cfg, make_ctrl) {
        Prepared::Finished(r) => print_result(name, &r),
        Prepared::Ready(mut cpu, stream) => {
            let r = run_to_completion(&mut cpu, stream);
            print_result(name, &r);
        }
    }
}

/// Dumps one benchmark's baseline and synchronous runs by stepping them
/// as a single gang (the `MCD_GOLDEN_GANG` mode).  Members that already
/// finished inside the checkpoint prefix bypass the gang; everything is
/// printed in the same order as the solo path, so the dump must be
/// byte-identical to it.
fn dump_gang(name: &str, bench: Benchmark, window_insts: u64) {
    let jobs = [
        (
            name.to_string(),
            SimConfig::baseline_mcd(20_000),
            ConfigKind::BaselineMcd,
        ),
        (
            format!("{name}_sync"),
            SimConfig::fully_synchronous(20_000),
            ConfigKind::FullySynchronous,
        ),
    ];
    let mut gang = match golden_batch() {
        Some(batched) => GangRun::new(window_insts).with_batched(batched),
        None => GangRun::new(window_insts),
    };
    let mut results: Vec<Option<Box<SimResult>>> = jobs.iter().map(|_| None).collect();
    for (slot, (_, cfg, kind)) in jobs.iter().enumerate() {
        match prepare(bench, 20_000, cfg.clone(), &|| {
            Box::new(FixedController::at_max())
        }) {
            Prepared::Finished(r) => results[slot] = Some(r),
            Prepared::Ready(cpu, stream) => {
                let stream = match stream {
                    GoldenStream::Live(g) => RunStream::Live(g),
                    GoldenStream::Traced(c) => RunStream::Trace(c),
                };
                gang.push(
                    slot,
                    Box::new(PausableRun::from_parts(bench, kind.clone(), *cpu, stream)),
                );
            }
        }
    }
    // The slice mode bounds each gang call exactly like a scheduler slot
    // would; otherwise one call drives the gang to completion.
    let budget = golden_slice().unwrap_or(u64::MAX);
    while !gang.is_done() {
        gang.step(budget);
    }
    for (slot, outcome) in gang.take_finished() {
        results[slot] = Some(Box::new(outcome.result));
    }
    for ((label, _, _), result) in jobs.iter().zip(results) {
        print_result(label, &result.expect("every gang member finished"));
    }
}

fn print_result(name: &str, r: &SimResult) {
    println!(
        "{name}: committed={} fe_cycles={} elapsed_ps={} energy={:?} mem={} redirects={} freqs={:?}",
        r.committed_instructions,
        r.frontend_cycles,
        r.elapsed_ps,
        r.chip_energy(),
        r.memory_accesses,
        r.mispredict_redirects,
        r.avg_domain_freq_mhz,
    );
    for iv in &r.intervals {
        println!(
            "  interval {} committed={} ipc={:?} freqs={:?}",
            iv.interval,
            iv.committed,
            iv.ipc,
            iv.domains.iter().map(|d| d.freq_mhz).collect::<Vec<_>>()
        );
    }
}

fn main() {
    for (name, b) in [
        ("gzip", Benchmark::Gzip),
        ("swim", Benchmark::Swim),
        ("mcf", Benchmark::Mcf),
    ] {
        if let Some(window_insts) = golden_gang() {
            dump_gang(name, b, window_insts);
        } else {
            dump(name, b, 20_000, SimConfig::baseline_mcd(20_000), &|| {
                Box::new(FixedController::at_max())
            });
            dump(
                &format!("{name}_sync"),
                b,
                20_000,
                SimConfig::fully_synchronous(20_000),
                &|| Box::new(FixedController::at_max()),
            );
        }
        // The Attack/Decay run has its own budget and trace recording;
        // it stays on the solo path in every mode.
        let mut cfg = SimConfig::baseline_mcd(60_000);
        cfg.record_traces = true;
        let table = OperatingPointTable::from_params(&cfg.clock);
        dump(&format!("{name}_ad"), b, 60_000, cfg, &|| {
            Box::new(AttackDecayController::new(
                AttackDecayParams::paper_defaults(),
                &table,
            ))
        });
    }
}
