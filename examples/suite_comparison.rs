//! Runs a cross-suite subset of the paper's 30 benchmarks under every
//! configuration of Table 6 and prints the per-benchmark Figure 4 panels
//! together with the averaged Table 6 rows.
//!
//! ```bash
//! cargo run --release --example suite_comparison
//! ```

use mcd::core::experiments::{figure4, run_suite, table6, ExperimentSettings};

fn main() {
    let settings = ExperimentSettings::quick();
    println!(
        "running {} benchmarks x 5 configurations ({} instructions each) ...",
        settings.benchmarks.len(),
        settings.instructions
    );
    let outcomes = run_suite(&settings);

    let fig4 = figure4::from_outcomes(&outcomes);
    println!("{}", fig4.render());

    let rows = table6::mcd_rows(&outcomes);
    let table = table6::Table6 { rows };
    println!(
        "Table 6 (MCD rows, relative to the baseline MCD processor)\n{}",
        table.render()
    );
}
