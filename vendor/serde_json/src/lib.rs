//! Offline stand-in for `serde_json`.
//!
//! Provides an explicitly constructed, insertion-ordered [`Value`] tree
//! with compact and pretty rendering.  There is no generic
//! `Serialize`-driven encoder: callers build the tree by hand (see the
//! `BENCH_*.json` artefacts written by `mcd-bench`).

#![forbid(unsafe_code)]

use std::fmt::Write as _;

/// A JSON value with insertion-ordered objects.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A finite float (non-finite values render as `null`).
    F64(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys keep their insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object value; panics on
    /// non-objects.
    pub fn insert(&mut self, key: &str, value: impl Into<Value>) -> &mut Value {
        match self {
            Value::Object(entries) => {
                if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value.into();
                } else {
                    entries.push((key.to_string(), value.into()));
                }
            }
            _ => panic!("insert on a non-object JSON value"),
        }
        self
    }

    /// Looks a key up in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn render(&self, out: &mut String, pretty: bool, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => escape_into(s, out),
            Value::Array(items) => {
                render_seq(out, pretty, depth, '[', ']', items.iter(), |v, out, d| {
                    v.render(out, pretty, d)
                });
            }
            Value::Object(entries) => {
                render_seq(
                    out,
                    pretty,
                    depth,
                    '{',
                    '}',
                    entries.iter(),
                    |(k, v), out, d| {
                        escape_into(k, out);
                        out.push(':');
                        if pretty {
                            out.push(' ');
                        }
                        v.render(out, pretty, d);
                    },
                );
            }
        }
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, true, 0);
        out
    }
}

/// Compact rendering (`value.to_string()` renders one-line JSON).
impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.render(&mut out, false, 0);
        f.write_str(&out)
    }
}

fn render_seq<T>(
    out: &mut String,
    pretty: bool,
    depth: usize,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut each: impl FnMut(T, &mut String, usize),
) {
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if pretty {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str("  ");
            }
        }
        each(item, out, depth + 1);
    }
    if pretty && !empty {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
    out.push(close);
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let mut obj = Value::object();
        obj.insert("name", "bench \"x\"");
        obj.insert("count", 3u64);
        obj.insert("mips", 12.5);
        obj.insert("items", vec![Value::U64(1), Value::Null]);
        let compact = obj.to_string();
        assert_eq!(
            compact,
            r#"{"name":"bench \"x\"","count":3,"mips":12.5,"items":[1,null]}"#
        );
        let pretty = obj.to_string_pretty();
        assert!(pretty.contains("\n  \"count\": 3"));
        assert_eq!(obj.get("count"), Some(&Value::U64(3)));
    }

    #[test]
    fn insert_replaces_and_non_finite_floats_render_null() {
        let mut obj = Value::object();
        obj.insert("v", 1u64);
        obj.insert("v", f64::NAN);
        assert_eq!(obj.to_string(), r#"{"v":null}"#);
    }
}
