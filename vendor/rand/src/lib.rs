//! Minimal, deterministic stand-in for the `rand` crate (0.8-style API).
//!
//! Implements exactly the surface this workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_bool` and `gen_range` over half-open ranges of the integer
//! and float types.  The generator is xoshiro256++ seeded via SplitMix64,
//! so streams are deterministic per seed (but differ from upstream
//! `rand`'s `StdRng` streams).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Random number generators (namespace mirror of `rand::rngs`).
pub mod rngs {
    pub use crate::StdRng;
}

/// A seedable RNG (API mirror of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// The xoshiro256++ generator behind [`rngs::StdRng`].
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full state, as
        // recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    /// The raw xoshiro256++ state words, for checkpointing.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from raw state words previously obtained from
    /// [`StdRng::state`]; the stream continues exactly where it left off.
    pub fn from_state(s: [u64; 4]) -> Self {
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types samplable uniformly from the full RNG word (mirror of the
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift (Lemire) bounded sampling; the tiny
                // modulo bias of the plain approach is avoided.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let f = f64::sample(rng);
        let v = self.start + f * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back into
        // the half-open range.
        if v >= self.end {
            self.start
                .max(self.end - (self.end - self.start) * f64::EPSILON)
        } else {
            v
        }
    }
}

/// Extension methods over any [`RngCore`] (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws one value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample(self) < p
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert!((0..100).any(|_| a.next_u64() != c.next_u64()));
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..13 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn u64_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0u64..8) as usize] += 1;
        }
        for c in counts {
            assert!((c as i64 - 10_000).abs() < 600, "bucket count {c}");
        }
    }
}
