//! Offline stand-in for `serde_derive`.
//!
//! The workspace's `serde` stand-in blanket-implements its marker traits,
//! so the derives only need to exist for `#[derive(Serialize,
//! Deserialize)]` attributes to parse — they expand to nothing.

use proc_macro::TokenStream;

/// Derives `serde::Serialize` (no-op: the trait is blanket-implemented).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives `serde::Deserialize` (no-op: the trait is blanket-implemented).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
