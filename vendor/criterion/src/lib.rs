//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API used by `mcd-bench`:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros.  Each benchmark auto-scales its iteration
//! count until one sample takes at least the measurement target
//! (`MCD_BENCH_MS` milliseconds, default 300), then prints the per
//! iteration mean wall-clock time.  Results also accumulate in-process so
//! harnesses can export machine-readable artefacts (see
//! [`Criterion::take_results`]).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Fully qualified benchmark id (`group/function`).
    pub id: String,
    /// Iterations of the final sample.
    pub iterations: u64,
    /// Total wall-clock time of the final sample.
    pub elapsed: Duration,
}

impl BenchResult {
    /// Mean nanoseconds per iteration.
    pub fn ns_per_iter(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.iterations.max(1) as f64
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher {
    target: Duration,
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly, auto-scaling the iteration count until the
    /// sample spans the measurement target.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up iteration (first-touch allocations, cache warming).
        black_box(f());
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target || iters >= 1 << 24 {
                self.iterations = iters;
                self.elapsed = elapsed;
                return;
            }
            // Scale toward the target with headroom, at least doubling.
            let scale = if elapsed.is_zero() {
                8.0
            } else {
                (self.target.as_secs_f64() / elapsed.as_secs_f64() * 1.2).max(2.0)
            };
            iters = ((iters as f64 * scale) as u64).max(iters + 1);
        }
    }
}

fn target_from_env() -> Duration {
    let ms = std::env::var("MCD_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(1))
}

/// Top-level benchmark registry (API mirror of `criterion::Criterion`).
pub struct Criterion {
    target: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            target: target_from_env(),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    fn run_one(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            target: self.target,
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let result = BenchResult {
            id: id.clone(),
            iterations: b.iterations,
            elapsed: b.elapsed,
        };
        println!(
            "bench: {id:<40} {:>12}/iter ({} iters in {:.3} s)",
            format_ns(result.ns_per_iter()),
            result.iterations,
            result.elapsed.as_secs_f64()
        );
        self.results.push(result);
    }

    /// Measures one benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id.to_string(), &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Drains the accumulated results (used to export artefacts).
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }
}

/// A named benchmark group (API mirror of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in takes one sample.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measures one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        self.criterion.run_one(full, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_scales_iterations_and_records_results() {
        std::env::set_var("MCD_BENCH_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("spin", |b| b.iter(|| black_box(1u64 + 1)));
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("inner", |b| b.iter(|| black_box(2u64 * 3)));
        group.finish();
        let results = c.take_results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].id, "spin");
        assert_eq!(results[1].id, "g/inner");
        assert!(results.iter().all(|r| r.iterations >= 1));
        assert!(results.iter().all(|r| r.ns_per_iter() > 0.0));
        assert!(c.take_results().is_empty());
    }
}
