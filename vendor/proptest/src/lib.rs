//! Offline stand-in for `proptest`.
//!
//! Supports the subset used by this workspace's property tests: the
//! `proptest!` macro with `arg in strategy` bindings and an optional
//! `#![proptest_config(...)]` header, `prop_assert!` / `prop_assert_eq!`,
//! range strategies over the primitive numeric types, tuple strategies,
//! and `proptest::collection::vec`.  Cases are sampled from a fixed
//! per-test seed (derived from the test name), so failures are
//! reproducible; there is no shrinking.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Everything the `proptest!` macro and its bodies need in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Error type produced by `prop_assert!` failures.
pub type TestCaseError = String;

/// Per-block configuration (mirror of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to sample per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic generator driving case sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Prng { state: seed }
    }

    /// Derives the per-test generator from the test's name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Prng::new(h)
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A source of values for one `proptest!` binding.
pub trait Strategy {
    /// The type of the produced values.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut Prng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Prng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut Prng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        v.min(self.end - (self.end - self.start) * f64::EPSILON)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut Prng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Collection strategies (mirror of `proptest::collection`).
pub mod collection {
    use super::{Prng, Range, Strategy};

    /// The permitted size span of a generated collection.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy's values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy producing vectors with `size` elements drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut Prng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the current case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                lhs,
                rhs,
                ::std::stringify!($lhs),
                ::std::stringify!($rhs)
            ));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` block
/// becomes a `#[test]` sampling its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::Prng::from_name(::std::stringify!($name));
            for case in 0..config.cases {
                $(
                    let $arg = $crate::Strategy::sample(&($strategy), &mut rng);
                )+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(message) = outcome {
                    ::std::panic!(
                        "proptest {} failed at case {}/{}: {}",
                        ::std::stringify!($name), case + 1, config.cases, message
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay inside their bounds.
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..9, f in 0.5f64..0.75, b in 0u8..3) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.5..0.75).contains(&f));
            prop_assert!(b < 3, "b = {}", b);
        }

        /// Tuple and vec strategies compose.
        #[test]
        fn collections_compose(
            items in crate::collection::vec((0usize..4, 0.0f64..1.0), 1..20),
            fixed in crate::collection::vec(0u64..100, 5),
        ) {
            prop_assert!(!items.is_empty() && items.len() < 20);
            prop_assert_eq!(fixed.len(), 5);
            for (i, f) in items {
                prop_assert!(i < 4 && f < 1.0);
            }
        }
    }

    #[test]
    fn prng_is_deterministic_per_name() {
        let mut a = super::Prng::from_name("x");
        let mut b = super::Prng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = super::Prng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
