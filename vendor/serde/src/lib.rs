//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types as
//! documentation of intent (and so that swapping in real `serde` later is
//! a manifest-only change), but nothing in the tree performs generic
//! serialization.  The traits are therefore empty markers with blanket
//! implementations, and the derives (re-exported from the `serde_derive`
//! stand-in) expand to nothing.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (blanket-implemented).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize` (blanket-implemented).
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Hand-rolled little-endian byte codec.
///
/// The real `serde` would bring a data-model-driven serializer; this
/// stand-in cannot, so the workspace's snapshot layer reads and writes
/// fields explicitly through [`codec::ByteWriter`] / [`codec::ByteReader`].
/// Living here keeps the codec available to every crate (they all already
/// depend on `serde`) without new manifest entries.
pub mod codec {
    /// Errors produced while decoding a byte stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum CodecError {
        /// The reader ran off the end of the buffer.
        UnexpectedEof {
            /// Byte offset at which more data was needed.
            at: usize,
        },
        /// A tag or sentinel had an unexpected value.
        BadTag {
            /// What was being decoded.
            what: &'static str,
            /// The offending value.
            got: u64,
        },
        /// Decoding finished with bytes left over.
        TrailingBytes {
            /// Number of unread bytes.
            remaining: usize,
        },
    }

    impl std::fmt::Display for CodecError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                CodecError::UnexpectedEof { at } => {
                    write!(f, "unexpected end of input at byte {at}")
                }
                CodecError::BadTag { what, got } => {
                    write!(f, "invalid {what} tag: {got}")
                }
                CodecError::TrailingBytes { remaining } => {
                    write!(f, "{remaining} trailing bytes after decode")
                }
            }
        }
    }

    impl std::error::Error for CodecError {}

    /// Decoding result.
    pub type Result<T> = std::result::Result<T, CodecError>;

    /// Appends little-endian primitive values to a growable buffer.
    #[derive(Debug, Default)]
    pub struct ByteWriter {
        buf: Vec<u8>,
    }

    impl ByteWriter {
        /// Creates an empty writer.
        pub fn new() -> Self {
            ByteWriter::default()
        }

        /// Consumes the writer, returning the encoded bytes.
        pub fn into_vec(self) -> Vec<u8> {
            self.buf
        }

        /// Number of bytes written so far.
        pub fn len(&self) -> usize {
            self.buf.len()
        }

        /// Whether nothing has been written yet.
        pub fn is_empty(&self) -> bool {
            self.buf.is_empty()
        }

        /// Writes one byte.
        pub fn put_u8(&mut self, v: u8) {
            self.buf.push(v);
        }

        /// Writes a `u16`.
        pub fn put_u16(&mut self, v: u16) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }

        /// Writes a `u32`.
        pub fn put_u32(&mut self, v: u32) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }

        /// Writes a `u64`.
        pub fn put_u64(&mut self, v: u64) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }

        /// Writes a `u128`.
        pub fn put_u128(&mut self, v: u128) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }

        /// Writes a `usize` as a `u64` (portable across word sizes).
        pub fn put_usize(&mut self, v: usize) {
            self.put_u64(v as u64);
        }

        /// Writes an `f64` as its IEEE-754 bit pattern.
        pub fn put_f64(&mut self, v: f64) {
            self.put_u64(v.to_bits());
        }

        /// Writes a `bool` as one byte (0 or 1).
        pub fn put_bool(&mut self, v: bool) {
            self.put_u8(u8::from(v));
        }

        /// Writes raw bytes (unprefixed; pair with a known length).
        pub fn put_bytes(&mut self, v: &[u8]) {
            self.buf.extend_from_slice(v);
        }

        /// Writes a length-prefixed UTF-8 string.
        pub fn put_str(&mut self, v: &str) {
            self.put_usize(v.len());
            self.buf.extend_from_slice(v.as_bytes());
        }
    }

    /// Reads little-endian primitive values from a byte slice.
    #[derive(Debug)]
    pub struct ByteReader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> ByteReader<'a> {
        /// Creates a reader over `buf`.
        pub fn new(buf: &'a [u8]) -> Self {
            ByteReader { buf, pos: 0 }
        }

        /// Number of unread bytes.
        pub fn remaining(&self) -> usize {
            self.buf.len() - self.pos
        }

        /// Current read offset.
        pub fn position(&self) -> usize {
            self.pos
        }

        fn take(&mut self, n: usize) -> Result<&'a [u8]> {
            if self.remaining() < n {
                return Err(CodecError::UnexpectedEof { at: self.pos });
            }
            let s = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Ok(s)
        }

        /// Reads one byte.
        pub fn u8(&mut self) -> Result<u8> {
            Ok(self.take(1)?[0])
        }

        /// Reads a `u16`.
        pub fn u16(&mut self) -> Result<u16> {
            Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
        }

        /// Reads a `u32`.
        pub fn u32(&mut self) -> Result<u32> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
        }

        /// Reads a `u64`.
        pub fn u64(&mut self) -> Result<u64> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
        }

        /// Reads a `u128`.
        pub fn u128(&mut self) -> Result<u128> {
            Ok(u128::from_le_bytes(
                self.take(16)?.try_into().expect("len 16"),
            ))
        }

        /// Reads a `usize` encoded as a `u64`.
        pub fn usize(&mut self) -> Result<usize> {
            let v = self.u64()?;
            usize::try_from(v).map_err(|_| CodecError::BadTag {
                what: "usize",
                got: v,
            })
        }

        /// Reads an `f64` from its IEEE-754 bit pattern.
        pub fn f64(&mut self) -> Result<f64> {
            Ok(f64::from_bits(self.u64()?))
        }

        /// Reads a `bool`, rejecting values other than 0 and 1.
        pub fn bool(&mut self) -> Result<bool> {
            match self.u8()? {
                0 => Ok(false),
                1 => Ok(true),
                other => Err(CodecError::BadTag {
                    what: "bool",
                    got: u64::from(other),
                }),
            }
        }

        /// Reads `n` raw bytes.
        pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
            self.take(n)
        }

        /// Reads a length-prefixed UTF-8 string.
        pub fn str(&mut self) -> Result<String> {
            let len = self.usize()?;
            let at = self.pos;
            let raw = self.take(len)?;
            String::from_utf8(raw.to_vec()).map_err(|_| CodecError::BadTag {
                what: "utf-8 string",
                got: at as u64,
            })
        }

        /// Asserts that every byte has been consumed.
        pub fn finish(&self) -> Result<()> {
            if self.remaining() == 0 {
                Ok(())
            } else {
                Err(CodecError::TrailingBytes {
                    remaining: self.remaining(),
                })
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn primitives_round_trip() {
            let mut w = ByteWriter::new();
            w.put_u8(0xab);
            w.put_u16(0x1234);
            w.put_u32(0xdead_beef);
            w.put_u64(u64::MAX - 7);
            w.put_u128(0x0123_4567_89ab_cdef_0123_4567_89ab_cdef);
            w.put_usize(42);
            w.put_f64(-1.5e300);
            w.put_bool(true);
            w.put_bool(false);
            w.put_str("snapshot");
            w.put_bytes(&[1, 2, 3]);
            let bytes = w.into_vec();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(r.u8().unwrap(), 0xab);
            assert_eq!(r.u16().unwrap(), 0x1234);
            assert_eq!(r.u32().unwrap(), 0xdead_beef);
            assert_eq!(r.u64().unwrap(), u64::MAX - 7);
            assert_eq!(r.u128().unwrap(), 0x0123_4567_89ab_cdef_0123_4567_89ab_cdef);
            assert_eq!(r.usize().unwrap(), 42);
            assert_eq!(r.f64().unwrap(), -1.5e300);
            assert!(r.bool().unwrap());
            assert!(!r.bool().unwrap());
            assert_eq!(r.str().unwrap(), "snapshot");
            assert_eq!(r.bytes(3).unwrap(), &[1, 2, 3]);
            r.finish().unwrap();
        }

        #[test]
        fn f64_bit_patterns_survive() {
            for v in [0.0, -0.0, f64::INFINITY, f64::MIN_POSITIVE, 1.0 / 3.0] {
                let mut w = ByteWriter::new();
                w.put_f64(v);
                let b = w.into_vec();
                let got = ByteReader::new(&b).f64().unwrap();
                assert_eq!(got.to_bits(), v.to_bits());
            }
        }

        #[test]
        fn eof_and_trailing_are_reported() {
            let mut r = ByteReader::new(&[1, 2]);
            assert_eq!(r.u8().unwrap(), 1);
            assert!(matches!(r.u64(), Err(CodecError::UnexpectedEof { at: 1 })));
            assert!(matches!(
                r.finish(),
                Err(CodecError::TrailingBytes { remaining: 1 })
            ));
        }

        #[test]
        fn bad_bool_is_rejected() {
            let mut r = ByteReader::new(&[7]);
            assert!(matches!(
                r.bool(),
                Err(CodecError::BadTag { what: "bool", .. })
            ));
        }
    }
}
