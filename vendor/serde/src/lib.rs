//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types as
//! documentation of intent (and so that swapping in real `serde` later is
//! a manifest-only change), but nothing in the tree performs generic
//! serialization.  The traits are therefore empty markers with blanket
//! implementations, and the derives (re-exported from the `serde_derive`
//! stand-in) expand to nothing.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (blanket-implemented).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize` (blanket-implemented).
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}
